// Package cpapr implements a Poisson (KL-divergence) nonnegative CP
// decomposition with multiplicative updates — the model family behind
// the paper's synthetic data: Sec. VI-A2 generates its Poisson tensors
// "using the same method presented in" Chi & Kolda ("On tensors,
// sparsity, and nonnegative factorizations") and Hansen et al., whose
// decompositions minimise the KL divergence rather than the Frobenius
// norm, because count data is Poisson- not Gaussian-distributed.
//
// The multiplicative-update (Lee–Seung style) rule per mode is
//
//	A ← A ∘ ((X ⊘ M)₍₁₎ · Π) ⊘ (1 · Π)
//
// where M is the current model and Π the Khatri-Rao product of the
// other factors. Its sparse form only evaluates the model at the
// nonzeros — per nonzero (i,j,k): m = Σ_r a_ir·b_jr·c_kr, then
// Φ[i,r] += (x/m)·b_jr·c_kr. That numerator IS an MTTKRP over the
// "ratio tensor" whose values are x/m at X's coordinates, so the
// update is executed through the shared engine layer: one
// MultiModeExecutor over a ratio tensor that aliases X's coordinates,
// with the ratio values rewritten in place before each mode's product.
// Everything the paper says about MTTKRP's memory behaviour applies
// here too.
package cpapr

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"spblock/internal/core"
	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

// Options configures the decomposition.
type Options struct {
	// Rank is the decomposition rank R. Required.
	Rank int
	// MaxIters bounds the multiplicative-update sweeps. Default 100.
	MaxIters int
	// Tol stops iteration when the KL objective improves by less than
	// this relative amount. Default 1e-6.
	Tol float64
	// MinValue clamps factor entries away from zero so multiplicative
	// updates cannot get permanently stuck. Default 1e-12.
	MinValue float64
	// Workers is the parallelism degree of the Φ numerator products.
	// Values <= 1 (including the default 0) run sequentially, which
	// keeps the update bit-for-bit deterministic; higher values use the
	// engine's privatised parallel COO kernel.
	Workers int
	// Seed drives the random positive initialisation.
	Seed int64
	// Ctx cancels the decomposition between mode updates: a canceled
	// run returns the partial result with ctx's error within one
	// update. nil means never canceled.
	Ctx context.Context
}

// Result holds the fitted nonnegative Kruskal tensor.
type Result struct {
	Factors [3]*la.Matrix
	// KL records the objective Σ m − Σ x·log m (the Poisson negative
	// log-likelihood up to an x-only constant) after each sweep.
	KL        []float64
	Iters     int
	Converged bool
}

// FinalKL returns the last objective value (or +Inf before any sweep).
func (r *Result) FinalKL() float64 {
	if len(r.KL) == 0 {
		return math.Inf(1)
	}
	return r.KL[len(r.KL)-1]
}

// Decompose fits a rank-R nonnegative model to the count tensor t.
// All values must be nonnegative.
func Decompose(t *tensor.COO, opts Options) (*Result, error) {
	if opts.Rank <= 0 {
		return nil, fmt.Errorf("cpapr: rank must be positive, got %d", opts.Rank)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for _, v := range t.Val {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("cpapr: negative or NaN value %v (KL needs counts)", v)
		}
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 100
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MinValue <= 0 {
		opts.MinValue = 1e-12
	}
	r := opts.Rank

	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for n := 0; n < 3; n++ {
		m := la.NewMatrix(t.Dims[n], r)
		for i := range m.Data {
			m.Data[i] = rng.Float64() + 0.1
		}
		res.Factors[n] = m
	}

	phi := [3]*la.Matrix{}
	for n := 0; n < 3; n++ {
		phi[n] = la.NewMatrix(t.Dims[n], r)
	}

	// The ratio tensor aliases t's coordinates and owns only a value
	// array; its engine serves all three Φ numerators as mode products.
	// Because the engine's permuted views share the ratio tensor's
	// value storage (MethodCOO executors alias their input), rewriting
	// rt.Val before a Run feeds every mode's executor — one value pass
	// per update, zero coordinate copies.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	rt := &tensor.COO{Dims: t.Dims, I: t.I, J: t.J, K: t.K, Val: make([]float64, t.NNZ())}
	eng, err := engine.NewMultiModeExecutor(rt, core.Plan{Method: core.MethodCOO, Workers: workers})
	if err != nil {
		return nil, err
	}

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	prev := math.Inf(1)
	for iter := 0; iter < opts.MaxIters; iter++ {
		for n := 0; n < 3; n++ {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("cpapr: canceled before mode-%d update: %w", n+1, err)
			}
			if err := updateMode(t, rt, eng, res.Factors, phi[n], n, opts.MinValue); err != nil {
				return nil, err
			}
		}
		kl := Objective(t, res.Factors)
		res.KL = append(res.KL, kl)
		res.Iters = iter + 1
		if iter > 0 {
			denom := math.Abs(prev)
			if denom < 1 {
				denom = 1
			}
			if (prev-kl)/denom < opts.Tol {
				res.Converged = true
				break
			}
		}
		prev = kl
	}
	return res, nil
}

// updateMode applies one multiplicative update to factors[mode]: it
// refreshes the ratio tensor's values X ⊘ M at the current model, runs
// the numerator Φ = (X ⊘ M)₍mode₎ · Π as mode `mode`'s MTTKRP through
// the engine, then scales the factor by Φ over the column-sum
// denominator.
func updateMode(t, rt *tensor.COO, eng *engine.MultiModeExecutor, factors [3]*la.Matrix, phi *la.Matrix, mode int, minVal float64) error {
	r := phi.Cols
	a, b, c := factors[0], factors[1], factors[2]
	for p := 0; p < t.NNZ(); p++ {
		arow := a.Row(int(t.I[p]))
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		var m float64
		for q := 0; q < r; q++ {
			m += arow[q] * brow[q] * crow[q]
		}
		if m < minVal {
			m = minVal
		}
		rt.Val[p] = t.Val[p] / m
	}
	// eng.Run zeroes phi before accumulating.
	if err := eng.Run(mode, factors, phi); err != nil {
		return err
	}
	// Denominator: column sums of Π = product of the other factors'
	// column sums.
	denom := make([]float64, r)
	for q := 0; q < r; q++ {
		denom[q] = 1
	}
	for other := 0; other < 3; other++ {
		if other == mode {
			continue
		}
		sums := columnSums(factors[other])
		for q := 0; q < r; q++ {
			denom[q] *= sums[q]
		}
	}
	f := factors[mode]
	for i := 0; i < f.Rows; i++ {
		frow, prow := f.Row(i), phi.Row(i)
		for q := 0; q < r; q++ {
			d := denom[q]
			if d < minVal {
				d = minVal
			}
			frow[q] *= prow[q] / d
			if frow[q] < minVal {
				frow[q] = minVal
			}
		}
	}
	return nil
}

func columnSums(m *la.Matrix) []float64 {
	s := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for q := range row {
			s[q] += row[q]
		}
	}
	return s
}

// Objective evaluates Σ m_full − Σ_nnz x·log m: the Poisson deviance up
// to the x-only constant Σ (x·log x − x). Lower is better. The dense
// Σ m_full term collapses to Σ_r Π_n (column sum of factor n).
func Objective(t *tensor.COO, factors [3]*la.Matrix) float64 {
	r := factors[0].Cols
	var total float64
	sums := [3][]float64{}
	for n := 0; n < 3; n++ {
		sums[n] = columnSums(factors[n])
	}
	for q := 0; q < r; q++ {
		total += sums[0][q] * sums[1][q] * sums[2][q]
	}
	a, b, c := factors[0], factors[1], factors[2]
	for p := 0; p < t.NNZ(); p++ {
		if t.Val[p] == 0 {
			continue
		}
		arow := a.Row(int(t.I[p]))
		brow := b.Row(int(t.J[p]))
		crow := c.Row(int(t.K[p]))
		var m float64
		for q := 0; q < r; q++ {
			m += arow[q] * brow[q] * crow[q]
		}
		if m < 1e-300 {
			m = 1e-300
		}
		total -= t.Val[p] * math.Log(m)
	}
	return total
}

// ModelValue evaluates the fitted model at one coordinate.
func (r *Result) ModelValue(i, j, k int) float64 {
	var m float64
	for q := 0; q < r.Factors[0].Cols; q++ {
		m += r.Factors[0].At(i, q) * r.Factors[1].At(j, q) * r.Factors[2].At(k, q)
	}
	return m
}
