package engine

import (
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/tensor"
)

func randMatrix(rng *rand.Rand, rows, cols int) *la.Matrix {
	m := la.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randCOO(rng *rand.Rand, dims tensor.Dims, nnz int) *tensor.COO {
	t := tensor.NewCOO(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			tensor.Index(rng.Intn(dims[0])),
			tensor.Index(rng.Intn(dims[1])),
			tensor.Index(rng.Intn(dims[2])),
			rng.NormFloat64(),
		)
	}
	t.Dedup()
	return t
}

// enginePlans enumerates every kernel family through the engine; the
// grid is deliberately asymmetric so PermutePlan's permutation and
// clamping are exercised by the mode-2/mode-3 products.
func enginePlans() []core.Plan {
	return []core.Plan{
		{Method: core.MethodCOO},
		{Method: core.MethodSPLATT, Workers: 1},
		{Method: core.MethodSPLATT, Workers: 4},
		{Method: core.MethodRankB, RankBlockCols: 16, Workers: 1},
		{Method: core.MethodRankB, RankBlockCols: 16, NoStripPacking: true, Workers: 1},
		{Method: core.MethodMB, Grid: [3]int{4, 2, 1}, Workers: 2},
		{Method: core.MethodMBRankB, Grid: [3]int{2, 3, 2}, RankBlockCols: 16, Workers: 2},
	}
}

// TestCrossModeEquivalenceMatrix checks every Method × every mode: the
// engine's mode-n product must agree with the dense reference oracle
// run on an explicitly permuted copy of the tensor.
func TestCrossModeEquivalenceMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := tensor.Dims{13, 11, 9}
	x := randCOO(rng, dims, 300)
	const rank = 33 // off the register-block width to hit tail paths
	factors := [3]*la.Matrix{
		randMatrix(rng, dims[0], rank),
		randMatrix(rng, dims[1], rank),
		randMatrix(rng, dims[2], rank),
	}
	var want [3]*la.Matrix
	for n := 0; n < 3; n++ {
		pt, err := x.PermuteModes(Modes[n].Perm)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = la.NewMatrix(dims[n], rank)
		if err := core.Reference(pt, factors[Modes[n].BFactor], factors[Modes[n].CFactor], want[n]); err != nil {
			t.Fatal(err)
		}
	}
	for _, plan := range enginePlans() {
		eng, err := NewMultiModeExecutor(x, plan)
		if err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		for n := 0; n < 3; n++ {
			got := la.NewMatrix(dims[n], rank)
			// Run twice: the second call exercises workspace reuse.
			for rep := 0; rep < 2; rep++ {
				if err := eng.Run(n, factors, got); err != nil {
					t.Fatalf("%v mode %d: %v", plan, n, err)
				}
			}
			if d := got.MaxAbsDiff(want[n]); d > 1e-9 {
				t.Fatalf("%v mode %d: differs from oracle by %v", plan, n, d)
			}
		}
	}
}

func TestPermuteViewIsZeroCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randCOO(rng, tensor.Dims{5, 6, 7}, 40)
	v, err := PermuteView(x, [3]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Dims != (tensor.Dims{7, 5, 6}) {
		t.Fatalf("permuted dims = %v", v.Dims)
	}
	if &v.I[0] != &x.K[0] || &v.J[0] != &x.I[0] || &v.K[0] != &x.J[0] {
		t.Fatal("coordinate slices were copied, not aliased")
	}
	if &v.Val[0] != &x.Val[0] {
		t.Fatal("values were copied, not aliased")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Aliased values: a write through the original is visible in the view.
	x.Val[0] = 42
	if v.Val[0] != 42 {
		t.Fatal("value mutation not visible through the view")
	}
}

func TestPermuteViewRejectsBadPerm(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	for _, perm := range [][3]int{{0, 0, 1}, {0, 1, 3}, {-1, 1, 2}} {
		if _, err := PermuteView(x, perm); err == nil {
			t.Fatalf("perm %v: expected error", perm)
		}
	}
}

func TestPermutePlan(t *testing.T) {
	dims := tensor.Dims{10, 4, 2}
	plan := core.Plan{Method: core.MethodMB, Grid: [3]int{8, 3, 2}}
	// Mode 2 leads with old mode 3: grid becomes {2,8,3} clamped to
	// permuted dims {2,10,4} → {2,8,3}.
	p := PermutePlan(plan, 2, dims)
	if p.Grid != ([3]int{2, 8, 3}) {
		t.Fatalf("mode-3 grid = %v", p.Grid)
	}
	// Clamping: a grid larger than the permuted mode lengths shrinks.
	plan.Grid = [3]int{10, 10, 10}
	p = PermutePlan(plan, 1, dims) // permuted dims {4,10,2}
	if p.Grid != ([3]int{4, 10, 2}) {
		t.Fatalf("clamped grid = %v", p.Grid)
	}
	// Zero grid defaults to {1,1,1}.
	plan.Grid = [3]int{}
	p = PermutePlan(plan, 0, dims)
	if p.Grid != ([3]int{1, 1, 1}) {
		t.Fatalf("defaulted grid = %v", p.Grid)
	}
}

func TestModeSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randCOO(rng, tensor.Dims{6, 5, 4}, 50)
	eng, err := NewMultiModeExecutor(x, core.Plan{Method: core.MethodSPLATT}, 2)
	if err != nil {
		t.Fatal(err)
	}
	factors := [3]*la.Matrix{
		randMatrix(rng, 6, 8), randMatrix(rng, 5, 8), randMatrix(rng, 4, 8),
	}
	out := la.NewMatrix(4, 8)
	if err := eng.Run(2, factors, out); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(0, factors, la.NewMatrix(6, 8)); err == nil {
		t.Fatal("expected error running a mode that was not requested")
	}
	if _, err := eng.Executor(1); err == nil {
		t.Fatal("expected error fetching an unbuilt mode's executor")
	}
	if _, err := eng.Executor(5); err == nil {
		t.Fatal("expected error for out-of-range mode")
	}
}

func TestNewMultiModeExecutorErrors(t *testing.T) {
	x := tensor.NewCOO(tensor.Dims{2, 2, 2}, 0)
	if _, err := NewMultiModeExecutor(x, core.Plan{}, 3); err == nil {
		t.Fatal("expected error for mode 3")
	}
	if _, err := NewMultiModeExecutor(x, core.Plan{Workers: -1}); err == nil {
		t.Fatal("expected error for negative workers")
	}
	bad := &tensor.COO{Dims: tensor.Dims{0, 1, 1}}
	if _, err := NewMultiModeExecutor(bad, core.Plan{}); err == nil {
		t.Fatal("expected error for invalid tensor")
	}
}

// TestSharedValueStorage is the contract cpapr depends on: with
// MethodCOO, rewriting the input tensor's values between Runs is
// visible to every mode's executor, because the permuted views alias
// the value array.
func TestSharedValueStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dims := tensor.Dims{5, 4, 3}
	x := randCOO(rng, dims, 30)
	eng, err := NewMultiModeExecutor(x, core.Plan{Method: core.MethodCOO})
	if err != nil {
		t.Fatal(err)
	}
	const rank = 4
	factors := [3]*la.Matrix{
		randMatrix(rng, dims[0], rank),
		randMatrix(rng, dims[1], rank),
		randMatrix(rng, dims[2], rank),
	}
	for p := range x.Val {
		x.Val[p] = float64(p + 1)
	}
	for n := 0; n < 3; n++ {
		pt, err := x.PermuteModes(Modes[n].Perm)
		if err != nil {
			t.Fatal(err)
		}
		want := la.NewMatrix(dims[n], rank)
		if err := core.Reference(pt, factors[Modes[n].BFactor], factors[Modes[n].CFactor], want); err != nil {
			t.Fatal(err)
		}
		got := la.NewMatrix(dims[n], rank)
		if err := eng.Run(n, factors, got); err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("mode %d after value rewrite: differs by %v", n, d)
		}
	}
}
