// Package engine is the shared execution layer between the mode-1
// MTTKRP kernels of internal/core and the decomposition drivers
// (cpd.CPALS, cpapr, dist.CPALS): it owns the mode-permutation
// identity that serves all three mode products with one kernel family
// (Sec. III-B — the three products are structurally identical) and
// amortises the per-mode preprocessing across an entire decomposition.
//
// A MultiModeExecutor builds the requested mode-permuted executors
// exactly once per tensor. The permuted views it feeds them are
// zero-copy (pure coordinate-slice relabelling), so the only real
// per-mode cost is the CSF or block build the method actually needs —
// and each executor's pooled workspace (see internal/core) makes the
// 10–1000s of Run calls of a CP-ALS sweep allocation-free in steady
// state.
package engine

import (
	"fmt"

	"spblock/internal/core"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/tensor"
)

// ModeSpec describes how mode n's MTTKRP is expressed as a mode-1
// product: Perm permutes the tensor so mode n leads, and BFactor /
// CFactor name which factor matrices act as the mode-1 kernel's B and
// C operands after the permutation.
type ModeSpec struct {
	Perm    [3]int
	BFactor int
	CFactor int
}

// ModePerm is the order-N generalisation of the mode table: the
// mode-rooted permutation for `mode` of an order-`order` tensor puts
// the output mode first and keeps the remaining modes in ascending
// order. The 3-entry Modes table is derived from it, and the order-N
// engine uses it directly.
func ModePerm(order, mode int) []int {
	p := make([]int, 1, order)
	p[0] = mode
	for m := 0; m < order; m++ {
		if m != mode {
			p = append(p, m)
		}
	}
	return p
}

// Modes is the single source of truth for the mode→(permutation,
// operand order) mapping used by every third-order decomposition
// driver: after the permutation, the mode-1 kernel's B and C operands
// are the factors of the two trailing permuted modes.
var Modes = func() [3]ModeSpec {
	var specs [3]ModeSpec
	for n := 0; n < 3; n++ {
		p := ModePerm(3, n)
		specs[n] = ModeSpec{Perm: [3]int{p[0], p[1], p[2]}, BFactor: p[1], CFactor: p[2]}
	}
	return specs
}()

// PermuteView returns a mode-permuted view of t that shares t's
// coordinate and value storage: new mode m holds what old mode perm[m]
// held, and no nonzero is copied (permuting a COO tensor is pure slice
// relabelling). The view aliases t — mutating either one's entries is
// visible through both — which is safe as executor input because the
// CSF and blocked builders clone before sorting; only MethodCOO
// executors keep reading the shared storage.
func PermuteView(t *tensor.COO, perm [3]int) (*tensor.COO, error) {
	seen := [3]bool{}
	for _, p := range perm {
		if p < 0 || p > 2 || seen[p] {
			return nil, fmt.Errorf("%w: bad mode permutation %v", tensor.ErrBadTensor, perm)
		}
		seen[p] = true
	}
	coords := [3][]tensor.Index{t.I, t.J, t.K}
	return &tensor.COO{
		Dims: tensor.Dims{t.Dims[perm[0]], t.Dims[perm[1]], t.Dims[perm[2]]},
		I:    coords[perm[0]],
		J:    coords[perm[1]],
		K:    coords[perm[2]],
		Val:  t.Val,
	}, nil
}

// PermutePlan orients plan for mode n of a tensor with the given
// (unpermuted) dims: the MB grid is permuted along with the tensor
// modes so the same spatial blocks apply, then clamped to the permuted
// mode lengths. A zero grid is defaulted to {1,1,1} first.
func PermutePlan(plan core.Plan, n int, dims tensor.Dims) core.Plan {
	if plan.Grid == ([3]int{}) {
		plan.Grid = [3]int{1, 1, 1}
	}
	perm := Modes[n].Perm
	grid := [3]int{plan.Grid[perm[0]], plan.Grid[perm[1]], plan.Grid[perm[2]]}
	for m := 0; m < 3; m++ {
		if grid[m] < 1 {
			grid[m] = 1
		}
		if d := dims[perm[m]]; grid[m] > d {
			grid[m] = d
		}
	}
	plan.Grid = grid
	return plan
}

// MultiModeExecutor serves MTTKRP for several modes of one tensor,
// building each mode's permuted executor exactly once. A decomposition
// driver constructs it up front and then calls Run per mode per sweep;
// all preprocessing (permutation, CSF/block builds, workspace sizing)
// is amortised across the whole decomposition.
//
// Like core.Executor, one MultiModeExecutor must not Run the same mode
// concurrently with itself; distinct modes have distinct executors and
// workspaces, so running different modes from different goroutines is
// safe.
type MultiModeExecutor struct {
	dims  tensor.Dims
	execs [3]*core.Executor
}

// NewMultiModeExecutor builds executors for the requested modes
// (default: all three) of t under plan. The plan's grid is interpreted
// in mode-1 orientation and permuted per mode. With MethodCOO the
// executors alias t's storage; other methods copy what they need
// during preprocessing.
func NewMultiModeExecutor(t *tensor.COO, plan core.Plan, modes ...int) (*MultiModeExecutor, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(modes) == 0 {
		modes = []int{0, 1, 2}
	}
	m := &MultiModeExecutor{dims: t.Dims}
	for _, n := range modes {
		if n < 0 || n > 2 {
			return nil, fmt.Errorf("engine: mode %d out of range [0,2]", n)
		}
		if m.execs[n] != nil {
			continue
		}
		pt, err := PermuteView(t, Modes[n].Perm)
		if err != nil {
			return nil, err
		}
		e, err := core.NewExecutor(pt, PermutePlan(plan, n, t.Dims))
		if err != nil {
			return nil, fmt.Errorf("engine: mode %d: %w", n, err)
		}
		m.execs[n] = e
	}
	return m, nil
}

// Run computes out = MTTKRP over mode n, selecting the B and C
// operands from factors by the mode's spec. out must be dims[n] rows.
//
//spblock:hotpath
func (m *MultiModeExecutor) Run(n int, factors [3]*la.Matrix, out *la.Matrix) error {
	e, err := m.executor(n)
	if err != nil {
		return err
	}
	mp := Modes[n]
	return e.Run(factors[mp.BFactor], factors[mp.CFactor], out)
}

// Executor returns mode n's underlying executor, for callers that want
// to drive the B/C operands themselves.
func (m *MultiModeExecutor) Executor(n int) (*core.Executor, error) {
	return m.executor(n)
}

// Metrics returns mode n's instrumentation collector (see
// core.Executor.Metrics). Each mode's executor collects independently.
func (m *MultiModeExecutor) Metrics(n int) (*metrics.Collector, error) {
	e, err := m.executor(n)
	if err != nil {
		return nil, err
	}
	return e.Metrics(), nil
}

// Sched reports the resolved scheduler identity of mode n's executor
// (see core.Executor.Sched); empty for sequential executors.
func (m *MultiModeExecutor) Sched(n int) (string, error) {
	e, err := m.executor(n)
	if err != nil {
		return "", err
	}
	return e.Sched(), nil
}

// Kernel reports the register-block kernel variant mode n's executor
// dispatches through (see core.Executor.Kernel).
func (m *MultiModeExecutor) Kernel(n int) (kernel.Variant, error) {
	e, err := m.executor(n)
	if err != nil {
		return kernel.Variant{}, err
	}
	return e.Kernel(), nil
}

// SetWorkers re-sizes every built mode executor's parallelism mid-life
// (see core.Executor.SetWorkers): worker closures, queue layouts and
// metrics buckets are rebuilt for n workers (0 = GOMAXPROCS) while the
// preprocessed per-mode structures are kept. Must not be called while
// any mode is mid-Run — the caller owns the same exclusivity rule Run
// does (a serving cache holds the executor's lease across the call).
func (m *MultiModeExecutor) SetWorkers(n int) error {
	for _, e := range m.execs {
		if e == nil {
			continue
		}
		if err := e.SetWorkers(n); err != nil {
			return err
		}
	}
	return nil
}

// MemoryBytes sums the preprocessed-structure footprint of every built
// mode executor — what a serving cache charges one cached multi-mode
// stack against its byte budget.
func (m *MultiModeExecutor) MemoryBytes() int64 {
	var s int64
	for _, e := range m.execs {
		if e != nil {
			s += e.MemoryBytes()
		}
	}
	return s
}

//spblock:coldpath
func (m *MultiModeExecutor) executor(n int) (*core.Executor, error) {
	if n < 0 || n > 2 {
		return nil, fmt.Errorf("engine: mode %d out of range [0,2]", n)
	}
	if m.execs[n] == nil {
		return nil, fmt.Errorf("engine: mode %d was not requested at construction", n)
	}
	return m.execs[n], nil
}

// Dims returns the unpermuted tensor shape.
func (m *MultiModeExecutor) Dims() tensor.Dims { return m.dims }
