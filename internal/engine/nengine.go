package engine

import (
	"fmt"

	"spblock/internal/core"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/nmode"
	"spblock/internal/tensor"
)

// NEngine is the order-N MultiModeExecutor: it builds and caches one
// mode-rooted executor per requested mode of an arbitrary-order tensor,
// exactly once per tensor. Third-order tensors are served by the
// order-3 core kernels behind a MultiModeExecutor (the fast path, with
// zero-copy permuted views of the input); higher orders run on the
// pooled nmode CSF executors. Either way every mode's workspace is
// reused across the 10-1000s of Run calls of a decomposition, so
// steady-state products are allocation-free.
//
// The same concurrency rule as MultiModeExecutor applies: one NEngine
// must not Run the same mode concurrently with itself.
type NEngine struct {
	dims  []int
	fast  *MultiModeExecutor
	execs []*nmode.Executor
}

// NewNEngine builds executors for the requested modes (default: all)
// of t under opts. opts.Grid (one entry per mode, clamped) selects
// multi-dimensional blocking, opts.RankBlockCols rank strips — on the
// order-3 fast path they map onto the corresponding core methods
// (MB / RankB / MBRankB / SPLATT).
func NewNEngine(t *nmode.Tensor, opts nmode.Options, modes ...int) (*NEngine, error) {
	return newNEngine(t, opts, false, modes)
}

// NewNEngineGeneric is NewNEngine without the order-3 fast path: every
// mode runs on the generic N-mode CSF executors regardless of order.
// Cross-order equivalence tests use it to pin the generic kernels
// against the third-order references; production callers should prefer
// NewNEngine.
func NewNEngineGeneric(t *nmode.Tensor, opts nmode.Options, modes ...int) (*NEngine, error) {
	return newNEngine(t, opts, true, modes)
}

func newNEngine(t *nmode.Tensor, opts nmode.Options, generic bool, modes []int) (*NEngine, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.Order()
	if n < 2 {
		return nil, fmt.Errorf("engine: order-%d tensor needs order >= 2", n)
	}
	if len(modes) == 0 {
		modes = make([]int, n)
		for m := range modes {
			modes[m] = m
		}
	}
	for _, m := range modes {
		if m < 0 || m >= n {
			return nil, fmt.Errorf("engine: mode %d out of range [0,%d)", m, n)
		}
	}
	e := &NEngine{dims: append([]int(nil), t.Dims...)}
	if n == 3 && !generic {
		coo, err := tensor.FromNMode(t)
		if err != nil {
			return nil, err
		}
		plan, err := planFromNOptions(opts, t.Dims)
		if err != nil {
			return nil, err
		}
		fast, err := NewMultiModeExecutor(coo, plan, modes...)
		if err != nil {
			return nil, err
		}
		e.fast = fast
		return e, nil
	}
	e.execs = make([]*nmode.Executor, n)
	for _, m := range modes {
		if e.execs[m] != nil {
			continue
		}
		ex, err := nmode.NewExecutor(t, m, opts)
		if err != nil {
			return nil, fmt.Errorf("engine: mode %d: %w", m, err)
		}
		e.execs[m] = ex
	}
	return e, nil
}

// planFromNOptions maps the N-mode kernel options onto the order-3
// method lattice: blocking and strips compose into MBRankB, either
// alone selects MB or RankB, neither the SPLATT baseline.
func planFromNOptions(opts nmode.Options, dims []int) (core.Plan, error) {
	plan := core.Plan{
		Workers:       opts.Workers,
		RankBlockCols: opts.RankBlockCols,
		Grid:          [3]int{1, 1, 1},
		Sched:         opts.Sched,
	}
	// Match the generic nmode.NewExecutor validation: a negative strip
	// width must not silently select SPLATT on the order-3 fast path.
	if opts.RankBlockCols < 0 {
		return plan, fmt.Errorf("engine: negative RankBlockCols %d", opts.RankBlockCols)
	}
	blocked := false
	if len(opts.Grid) != 0 {
		if len(opts.Grid) != 3 {
			return plan, fmt.Errorf("engine: grid %v for order-3 tensor", opts.Grid)
		}
		for m, g := range opts.Grid {
			if g < 1 {
				g = 1
			}
			if g > dims[m] {
				g = dims[m]
			}
			plan.Grid[m] = g
			if g > 1 {
				blocked = true
			}
		}
	}
	switch {
	case blocked && opts.RankBlockCols > 0:
		plan.Method = core.MethodMBRankB
	case blocked:
		plan.Method = core.MethodMB
	case opts.RankBlockCols > 0:
		plan.Method = core.MethodRankB
	default:
		plan.Method = core.MethodSPLATT
	}
	return plan, nil
}

// Run computes out = MTTKRP over mode `mode`. factors is indexed by
// mode with one entry per mode (the output mode's entry may be nil);
// out must be dims[mode] rows.
//
//spblock:hotpath
func (e *NEngine) Run(mode int, factors []*la.Matrix, out *la.Matrix) error {
	n := len(e.dims)
	if mode < 0 || mode >= n {
		return fmt.Errorf("engine: mode %d out of range [0,%d)", mode, n) //spblock:allow misuse error path, never taken by a decomposition sweep
	}
	if len(factors) != n {
		return fmt.Errorf("engine: %d factors for order-%d tensor", len(factors), n) //spblock:allow misuse error path, never taken by a decomposition sweep
	}
	if e.fast != nil {
		return e.fast.Run(mode, [3]*la.Matrix{factors[0], factors[1], factors[2]}, out)
	}
	if e.execs[mode] == nil {
		return fmt.Errorf("engine: mode %d was not requested at construction", mode) //spblock:allow misuse error path, never taken by a decomposition sweep
	}
	return e.execs[mode].Run(factors, out)
}

// Metrics returns mode `mode`'s instrumentation collector, whichever
// executor family (order-3 fast path or generic N-mode) serves it.
func (e *NEngine) Metrics(mode int) (*metrics.Collector, error) {
	if mode < 0 || mode >= len(e.dims) {
		return nil, fmt.Errorf("engine: mode %d out of range [0,%d)", mode, len(e.dims))
	}
	if e.fast != nil {
		return e.fast.Metrics(mode)
	}
	if e.execs[mode] == nil {
		return nil, fmt.Errorf("engine: mode %d was not requested at construction", mode)
	}
	return e.execs[mode].Metrics(), nil
}

// Kernel reports the register-block kernel variant mode `mode`'s
// executor dispatches through, whichever executor family serves it
// (the zero Variant before that mode's first Run).
func (e *NEngine) Kernel(mode int) (kernel.Variant, error) {
	if mode < 0 || mode >= len(e.dims) {
		return kernel.Variant{}, fmt.Errorf("engine: mode %d out of range [0,%d)", mode, len(e.dims))
	}
	if e.fast != nil {
		return e.fast.Kernel(mode)
	}
	if e.execs[mode] == nil {
		return kernel.Variant{}, fmt.Errorf("engine: mode %d was not requested at construction", mode)
	}
	return e.execs[mode].Kernel(), nil
}

// Sched reports the resolved scheduler identity of mode `mode`'s
// executor (the internal/sched name constants; empty for sequential
// executors), whichever executor family serves it. Adaptive executors
// report their current layout, so a decomposition driver can watch a
// mode get promoted between sweeps.
func (e *NEngine) Sched(mode int) (string, error) {
	if mode < 0 || mode >= len(e.dims) {
		return "", fmt.Errorf("engine: mode %d out of range [0,%d)", mode, len(e.dims))
	}
	if e.fast != nil {
		return e.fast.Sched(mode)
	}
	if e.execs[mode] == nil {
		return "", fmt.Errorf("engine: mode %d was not requested at construction", mode)
	}
	return e.execs[mode].Sched(), nil
}

// SetWorkers re-sizes every built mode executor's parallelism mid-life,
// whichever executor family serves it (see core.Executor.SetWorkers and
// nmode.Executor.SetWorkers). Must not be called while any mode is
// mid-Run.
func (e *NEngine) SetWorkers(n int) error {
	if e.fast != nil {
		return e.fast.SetWorkers(n)
	}
	for _, ex := range e.execs {
		if ex == nil {
			continue
		}
		if err := ex.SetWorkers(n); err != nil {
			return err
		}
	}
	return nil
}

// Order returns the number of modes.
func (e *NEngine) Order() int { return len(e.dims) }

// Dims returns the tensor shape.
func (e *NEngine) Dims() []int { return e.dims }
