package engine

import (
	"math/rand"
	"testing"

	"spblock/internal/core"
	"spblock/internal/la"
	"spblock/internal/nmode"
	"spblock/internal/sched"
	"spblock/internal/tensor"
)

// nOptionRows enumerates the N-mode configuration lattice: unblocked,
// rank strips, an MB grid, and the combination — sequential and
// parallel.
func nOptionRows(order int) []nmode.Options {
	grid := make([]int, order)
	for m := range grid {
		grid[m] = 1 + m%2 // {1,2,1,2,...}: asymmetric on purpose
	}
	grid[0] = 2
	return []nmode.Options{
		{Workers: 1},
		{Workers: 3},
		{RankBlockCols: 16, Workers: 1},
		{Grid: grid, Workers: 2},
		{Grid: grid, RankBlockCols: 16, Workers: 2},
	}
}

// TestCrossOrderEquivalence is the generic-vs-reference matrix: an
// order-3 tensor pushed through the generic N-mode executors (no
// order-3 fast path) must agree with the order-3 dense reference for
// every configuration row and every mode. This pins the generalised
// CSF kernels to the same numbers the paper's third-order kernels
// produce.
func TestCrossOrderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dims := tensor.Dims{13, 11, 9}
	x := randCOO(rng, dims, 300)
	nt := tensor.ToNMode(x)
	const rank = 33 // off the register-block width to hit tail paths
	factors := make([]*la.Matrix, 3)
	for m := 0; m < 3; m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	var want [3]*la.Matrix
	for n := 0; n < 3; n++ {
		pt, err := x.PermuteModes(Modes[n].Perm)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = la.NewMatrix(dims[n], rank)
		if err := core.Reference(pt, factors[Modes[n].BFactor], factors[Modes[n].CFactor], want[n]); err != nil {
			t.Fatal(err)
		}
	}
	for _, opts := range nOptionRows(3) {
		eng, err := NewNEngineGeneric(nt, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for n := 0; n < 3; n++ {
			got := la.NewMatrix(dims[n], rank)
			// Run twice: the second call exercises workspace reuse.
			for rep := 0; rep < 2; rep++ {
				if err := eng.Run(n, factors, got); err != nil {
					t.Fatalf("%+v mode %d: %v", opts, n, err)
				}
			}
			if d := got.MaxAbsDiff(want[n]); d > 1e-9 {
				t.Fatalf("%+v mode %d: differs from order-3 reference by %v", opts, n, d)
			}
		}
	}
}

// TestNEngineFastPathAgreesWithGeneric: the order-3 fast path and the
// generic CSF path are the same mathematical operator.
func TestNEngineFastPathAgreesWithGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dims := tensor.Dims{12, 10, 8}
	nt := tensor.ToNMode(randCOO(rng, dims, 250))
	const rank = 17
	factors := make([]*la.Matrix, 3)
	for m := 0; m < 3; m++ {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	for _, opts := range nOptionRows(3) {
		fast, err := NewNEngine(nt, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		generic, err := NewNEngineGeneric(nt, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for n := 0; n < 3; n++ {
			a := la.NewMatrix(dims[n], rank)
			b := la.NewMatrix(dims[n], rank)
			if err := fast.Run(n, factors, a); err != nil {
				t.Fatal(err)
			}
			if err := generic.Run(n, factors, b); err != nil {
				t.Fatal(err)
			}
			if d := a.MaxAbsDiff(b); d > 1e-9 {
				t.Fatalf("%+v mode %d: fast path differs from generic by %v", opts, n, d)
			}
		}
	}
}

// TestNEngineHigherOrder pins the order-4 engine against the dense
// oracle computed from the raw coordinates.
func TestNEngineHigherOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	dims := []int{9, 8, 7, 6}
	nt := nmode.NewTensor(dims, 400)
	coords := make([]nmode.Index, 4)
	for p := 0; p < 400; p++ {
		for m, d := range dims {
			coords[m] = nmode.Index(rng.Intn(d))
		}
		nt.Append(coords, rng.NormFloat64())
	}
	if _, err := nt.Dedup(); err != nil {
		t.Fatal(err)
	}
	const rank = 21
	factors := make([]*la.Matrix, 4)
	for m := range dims {
		factors[m] = randMatrix(rng, dims[m], rank)
	}
	// Dense oracle, straight off the COO data.
	var want [4]*la.Matrix
	for mode := range dims {
		want[mode] = la.NewMatrix(dims[mode], rank)
		for p := 0; p < nt.NNZ(); p++ {
			row := want[mode].Row(int(nt.Idx[mode][p]))
			for q := 0; q < rank; q++ {
				v := nt.Val[p]
				for m := range dims {
					if m != mode {
						v *= factors[m].At(int(nt.Idx[m][p]), q)
					}
				}
				row[q] += v
			}
		}
	}
	for _, opts := range nOptionRows(4) {
		eng, err := NewNEngine(nt, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for mode := range dims {
			got := la.NewMatrix(dims[mode], rank)
			for rep := 0; rep < 2; rep++ {
				if err := eng.Run(mode, factors, got); err != nil {
					t.Fatalf("%+v mode %d: %v", opts, mode, err)
				}
			}
			if d := got.MaxAbsDiff(want[mode]); d > 1e-9 {
				t.Fatalf("%+v mode %d: differs from oracle by %v", opts, mode, d)
			}
		}
	}
}

// TestNEngineValidation covers construction and Run errors.
func TestNEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nt := tensor.ToNMode(randCOO(rng, tensor.Dims{6, 5, 4}, 40))
	if _, err := NewNEngine(nt, nmode.Options{}, 3); err == nil {
		t.Error("mode 3 accepted")
	}
	if _, err := NewNEngine(nt, nmode.Options{Grid: []int{2, 2}}); err == nil {
		t.Error("short grid accepted on the fast path")
	}
	if _, err := NewNEngineGeneric(nt, nmode.Options{Grid: []int{2, 2}}); err == nil {
		t.Error("short grid accepted on the generic path")
	}
	eng, err := NewNEngineGeneric(nt, nmode.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Order() != 3 || len(eng.Dims()) != 3 {
		t.Fatalf("accessors: order=%d dims=%v", eng.Order(), eng.Dims())
	}
	factors := []*la.Matrix{nil, nil, randMatrix(rng, 4, 8)}
	factors[0] = randMatrix(rng, 6, 8)
	if err := eng.Run(1, factors, la.NewMatrix(5, 8)); err != nil {
		t.Errorf("requested mode rejected: %v", err)
	}
	if err := eng.Run(0, factors, la.NewMatrix(6, 8)); err == nil {
		t.Error("unrequested mode accepted")
	}
	if err := eng.Run(5, factors, la.NewMatrix(6, 8)); err == nil {
		t.Error("out-of-range mode accepted")
	}
	if err := eng.Run(1, factors[:2], la.NewMatrix(5, 8)); err == nil {
		t.Error("short factor list accepted")
	}
}

// TestNEngineSchedPropagation pins Options.Sched through both executor
// families: the order-3 fast path maps it onto core.Plan.Sched and the
// generic N-mode executors take it directly; either way the engine
// reports the resolved scheduler identity per mode.
func TestNEngineSchedPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	nt3 := tensor.ToNMode(randCOO(rng, tensor.Dims{24, 20, 16}, 1500))
	dims4 := []int{12, 10, 8, 6}
	nt4 := nmode.NewTensor(dims4, 1200)
	coords := make([]nmode.Index, 4)
	for p := 0; p < 1200; p++ {
		for m, d := range dims4 {
			coords[m] = nmode.Index(rng.Intn(d))
		}
		nt4.Append(coords, rng.NormFloat64())
	}
	if _, err := nt4.Dedup(); err != nil {
		t.Fatal(err)
	}
	for _, nt := range []*nmode.Tensor{nt3, nt4} {
		eng, err := NewNEngine(nt, nmode.Options{Workers: 4, Sched: sched.PolicySteal})
		if err != nil {
			t.Fatal(err)
		}
		for mode := 0; mode < nt.Order(); mode++ {
			got, err := eng.Sched(mode)
			if err != nil {
				t.Fatal(err)
			}
			if got != sched.StealName {
				t.Errorf("order-%d mode %d: sched %q, want %q", nt.Order(), mode, got, sched.StealName)
			}
		}
		if _, err := eng.Sched(nt.Order()); err == nil {
			t.Error("out-of-range mode accepted")
		}
	}
	// An adaptive engine starts on the static layout.
	eng, err := NewNEngine(nt3, nmode.Options{Workers: 4, Sched: sched.PolicyAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := eng.Sched(0); got != sched.AdaptiveStaticName {
		t.Errorf("adaptive engine reports %q, want %q", got, sched.AdaptiveStaticName)
	}
	// An invalid policy is rejected at construction on both paths.
	if _, err := NewNEngine(nt3, nmode.Options{Sched: sched.Policy(9)}); err == nil {
		t.Error("fast path accepted an invalid sched policy")
	}
	if _, err := NewNEngine(nt4, nmode.Options{Sched: sched.Policy(9)}); err == nil {
		t.Error("generic path accepted an invalid sched policy")
	}
}
