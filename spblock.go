// Package spblock is a Go implementation of the blocking optimisation
// techniques for sparse tensor computation of Choi, Liu, Smith and
// Simon (IPDPS 2018): the SPLATT-format sparse MTTKRP kernel, the
// multi-dimensional (MB) and rank (RankB) blocking optimisations with
// register blocking, the block-size selection heuristic, the CP-ALS
// decomposition built on top, and a distributed MTTKRP with the
// paper's 4D (rank-partitioned) processor grid.
//
// Quick start:
//
//	x, _ := spblock.LoadTNS("data.tns")
//	plan, _, _ := spblock.Autotune(x, 64, spblock.MethodMBRankB, spblock.AutotuneOptions{})
//	exec, _ := spblock.NewExecutor(x, plan)
//	b := spblock.NewMatrix(x.Dims[1], 64) // fill with your factors
//	c := spblock.NewMatrix(x.Dims[2], 64)
//	out := spblock.NewMatrix(x.Dims[0], 64)
//	_ = exec.Run(b, c, out) // out = X(1) · (B ⊙ C)
//
// The facade re-exports the library's primary types; the analysis
// tooling (roofline model, cache simulator, pressure point analysis,
// experiment harness) lives in the internal packages and is exposed
// through the cmd/spblock-exp command.
package spblock

import (
	"io"

	"spblock/internal/core"
	"spblock/internal/cpapr"
	"spblock/internal/cpd"
	"spblock/internal/dist"
	"spblock/internal/engine"
	"spblock/internal/gen"
	"spblock/internal/kernel"
	"spblock/internal/la"
	"spblock/internal/metrics"
	"spblock/internal/mpi"
	"spblock/internal/nmode"
	"spblock/internal/sched"
	"spblock/internal/server"
	"spblock/internal/tensor"
)

// Core data types.
type (
	// Tensor is a third-order sparse tensor in coordinate form.
	Tensor = tensor.COO
	// Dims holds the three mode lengths.
	Dims = tensor.Dims
	// CSF is the SPLATT compressed-fiber storage (Figure 1b of the paper).
	CSF = tensor.CSF
	// Stats summarises a tensor's shape (Table II vocabulary).
	Stats = tensor.Stats
	// Matrix is a dense row-major factor matrix.
	Matrix = la.Matrix

	// Plan selects and parameterises an MTTKRP kernel.
	Plan = core.Plan
	// Method names one of the kernel families.
	Method = core.Method
	// Executor owns preprocessed structures and runs MTTKRP repeatedly.
	Executor = core.Executor
	// KernelVariant identifies the width-specialized rank-strip kernel
	// an executor resolved for its plan (Executor.Kernel,
	// MultiExecutor.Kernel, MultiExecutorN.Kernel).
	KernelVariant = kernel.Variant
	// KernelMetrics is the always-on, allocation-free instrumentation
	// collector every executor carries; reach it via Executor.Metrics,
	// MultiExecutor.Metrics or MultiExecutorN.Metrics.
	KernelMetrics = metrics.Collector
	// KernelSnapshot is a point-in-time copy of a collector's counters
	// with the derived report quantities (ns/run, load imbalance,
	// achieved GB/s against the Equation 1 traffic estimate).
	KernelSnapshot = metrics.Snapshot
	// PhaseTimes buckets a decomposition's wall time by phase (MTTKRP vs
	// solve vs fit); CPALS, CPALSN and DistCPALS results carry one.
	PhaseTimes = metrics.PhaseTimes
	// MultiExecutor serves MTTKRP for several modes of one tensor,
	// building each mode's permuted executor exactly once.
	MultiExecutor = engine.MultiModeExecutor
	// BlockedTensor is the multi-dimensionally blocked representation.
	BlockedTensor = core.BlockedTensor
	// SchedPolicy selects the work-distribution policy for a plan's
	// parallel workers (Plan.Sched, OptionsN.Sched): static shares,
	// chunked work stealing, or the adaptive controller that promotes
	// static to stealing when the measured imbalance holds above its
	// threshold. See internal/sched.
	SchedPolicy = sched.Policy
	// AutotuneOptions configures the Sec. V-C block-size heuristic.
	AutotuneOptions = core.AutotuneOptions
	// Trial is one measured autotuning candidate.
	Trial = core.Trial

	// CPOptions configures a CP-ALS decomposition.
	CPOptions = cpd.Options
	// CPResult is a fitted Kruskal tensor.
	CPResult = cpd.Result
	// APROptions configures a Poisson (KL) nonnegative decomposition.
	APROptions = cpapr.Options
	// APRResult is a fitted nonnegative Kruskal tensor.
	APRResult = cpapr.Result

	// DistConfig configures a distributed MTTKRP execution.
	DistConfig = dist.Config
	// DistResult reports a distributed execution.
	DistResult = dist.Result
	// DistEngine owns a reusable distributed MTTKRP setup.
	DistEngine = dist.Engine
	// DistCPOptions configures a distributed CP-ALS decomposition.
	DistCPOptions = dist.CPOptions
	// DistCPResult reports a distributed decomposition.
	DistCPResult = dist.CPResult
	// CostModel prices communication in the distributed runtime.
	CostModel = mpi.CostModel
	// FaultPlan is a seeded, deterministic fault schedule for the
	// distributed runtime (set DistConfig.Faults to arm it).
	FaultPlan = mpi.FaultPlan
	// CommStats carries the fault-tolerance telemetry of a distributed
	// decomposition (DistCPResult.Comm).
	CommStats = metrics.CommStats

	// DatasetSpec describes a Table II data set generator.
	DatasetSpec = gen.DatasetSpec

	// TensorN is an order-N sparse tensor in coordinate form.
	TensorN = nmode.Tensor
	// CSFN is the order-N compressed-sparse-fiber tree.
	CSFN = nmode.CSF
	// OptionsN configures the order-N MTTKRP (rank strips, workers, MB
	// grid).
	OptionsN = nmode.Options
	// ExecutorN owns preprocessed structures and a pooled workspace for
	// repeated MTTKRP products over one mode of an order-N tensor.
	ExecutorN = nmode.Executor
	// MultiExecutorN is the order-N MultiExecutor: one cached
	// mode-rooted executor per mode of an arbitrary-order tensor, with
	// third-order inputs served by the order-3 fast path.
	MultiExecutorN = engine.NEngine
	// CPNOptions configures an order-N CP-ALS decomposition.
	CPNOptions = cpd.NOptions
	// CPNResult is a fitted order-N Kruskal tensor.
	CPNResult = cpd.NResult
)

// Kernel methods.
const (
	// MethodCOO is the coordinate-format reference kernel.
	MethodCOO = core.MethodCOO
	// MethodSPLATT is the baseline SPLATT kernel (Algorithm 1).
	MethodSPLATT = core.MethodSPLATT
	// MethodMB applies multi-dimensional blocking.
	MethodMB = core.MethodMB
	// MethodRankB applies rank blocking with register blocking
	// (Algorithm 2).
	MethodRankB = core.MethodRankB
	// MethodMBRankB combines both blockings.
	MethodMBRankB = core.MethodMBRankB
)

// Scheduling policies (Plan.Sched / OptionsN.Sched).
const (
	// SchedStatic is the zero value: one contiguous weight-balanced
	// share per worker, computed once at executor build — the paper's
	// implicit scheduling model, and bit-identical to it.
	SchedStatic = sched.PolicyStatic
	// SchedSteal carves the same work into many weight-balanced chunks
	// and lets idle workers steal from loaded ones.
	SchedSteal = sched.PolicySteal
	// SchedAdaptive starts static and promotes to stealing when the
	// measured worker imbalance stays above the controller threshold.
	SchedAdaptive = sched.PolicyAdaptive
)

// ParseSchedPolicy maps the CLI spelling ("static", "steal",
// "adaptive") to a SchedPolicy, as mttkrp-bench -sched does.
func ParseSchedPolicy(s string) (SchedPolicy, error) { return sched.ParsePolicy(s) }

// RegisterBlockWidth is the default register-blocking width (16
// float64 lanes); the kernel registry also carries wider and narrower
// specializations — see KernelWidths.
const RegisterBlockWidth = core.RegisterBlockWidth

// KernelWidths lists the rank-strip widths with registered
// register-block kernel specializations, ascending. Plans whose strip
// width matches one of these run fully unrolled; other widths are
// served by the widest registered kernel that fits plus a scalar tail.
func KernelWidths() []int { return kernel.Widths() }

// PlanKernel predicts the rank-strip kernel variant an executor for
// plan resolves at the given rank (the zero variant for methods that
// never register-block). Executors report the variant they actually
// resolved via Executor.Kernel after the first Run.
func PlanKernel(plan Plan, rank int) KernelVariant { return core.PlanKernel(plan, rank) }

// NewTensor allocates an empty tensor with the given mode lengths.
func NewTensor(dims Dims, capacity int) *Tensor { return tensor.NewCOO(dims, capacity) }

// NewMatrix allocates a zeroed rows × cols factor matrix.
func NewMatrix(rows, cols int) *Matrix { return la.NewMatrix(rows, cols) }

// LoadTNS reads a FROSTT-style text tensor from a file.
func LoadTNS(path string) (*Tensor, error) { return tensor.LoadTNSFile(path) }

// SaveTNS writes a tensor to a file in FROSTT text form.
func SaveTNS(path string, t *Tensor) error { return tensor.SaveTNSFile(path, t) }

// ReadTNS parses a FROSTT-style text tensor from a reader.
func ReadTNS(r io.Reader) (*Tensor, error) { return tensor.ReadTNS(r) }

// WriteTNS writes a tensor in FROSTT text form.
func WriteTNS(w io.Writer, t *Tensor) error { return tensor.WriteTNS(w, t) }

// BuildCSF converts a tensor to the SPLATT storage format.
func BuildCSF(t *Tensor) (*CSF, error) { return tensor.BuildCSF(t) }

// ComputeStats gathers shape statistics for a tensor.
func ComputeStats(t *Tensor) Stats { return tensor.ComputeStats(t) }

// NewExecutor preprocesses t for the plan; Run it once per MTTKRP.
// Repeated Run calls reuse the executor's pooled workspace and are
// allocation-free in steady state.
func NewExecutor(t *Tensor, plan Plan) (*Executor, error) { return core.NewExecutor(t, plan) }

// NewMultiExecutor preprocesses t once per requested mode (default:
// all three) so one setup serves every mode product of a decomposition
// loop — the same amortisation CPALS and DistCPALS use internally. Use
// it instead of NewExecutor whenever you need more than the mode-1
// product:
//
//	me, _ := spblock.NewMultiExecutor(x, plan)
//	factors := [3]*spblock.Matrix{a, b, c}
//	_ = me.Run(1, factors, out) // out = X₍₂₎ · (A ⊙ C)
func NewMultiExecutor(t *Tensor, plan Plan, modes ...int) (*MultiExecutor, error) {
	return engine.NewMultiModeExecutor(t, plan, modes...)
}

// MTTKRP computes out = X₍₁₎ · (B ⊙ C) once with the given plan.
func MTTKRP(t *Tensor, b, c, out *Matrix, plan Plan) error {
	return core.MTTKRP(t, b, c, out, plan)
}

// BuildBlocked reorganises t into the grid blocks of MB blocking.
func BuildBlocked(t *Tensor, grid [3]int) (*BlockedTensor, error) {
	return core.BuildBlocked(t, grid)
}

// Autotune runs the Sec. V-C heuristic and returns a tuned plan.
func Autotune(t *Tensor, rank int, method Method, opts AutotuneOptions) (Plan, []Trial, error) {
	return core.Autotune(t, rank, method, opts)
}

// CPALS decomposes t into a rank-R Kruskal tensor with alternating
// least squares, using the plan's MTTKRP kernel for all three modes.
func CPALS(t *Tensor, opts CPOptions) (*CPResult, error) { return cpd.CPALS(t, opts) }

// CPAPR fits a nonnegative rank-R model to a count tensor by
// minimising the KL divergence (Poisson likelihood) with multiplicative
// updates — the model family the paper's Poisson data sets come from.
func CPAPR(t *Tensor, opts APROptions) (*APRResult, error) { return cpapr.Decompose(t, opts) }

// DistMTTKRP runs the distributed mode-1 MTTKRP (medium-grained 3D, or
// the paper's 4D when cfg.RankParts > 1) on the in-process MPI runtime.
func DistMTTKRP(t *Tensor, b, c *Matrix, cfg DistConfig) (*DistResult, error) {
	return dist.MTTKRP(t, b, c, cfg)
}

// NewDistEngine partitions t once for repeated distributed MTTKRP runs
// at the given rank.
func NewDistEngine(t *Tensor, rank int, cfg DistConfig) (*DistEngine, error) {
	return dist.NewEngine(t, rank, cfg)
}

// DistCPALS runs a full CP-ALS decomposition with every MTTKRP executed
// on the distributed runtime.
func DistCPALS(t *Tensor, cfg DistConfig, opts DistCPOptions) (*DistCPResult, error) {
	return dist.CPALS(t, cfg, opts)
}

// DefaultCluster is the distributed runtime's default network model.
func DefaultCluster() CostModel { return mpi.DefaultCluster() }

// NewFaultPlan returns an unarmed fault plan with the default
// reliability knobs; set its probability / rank fields to inject
// faults under the distributed collectives.
func NewFaultPlan(seed int64) *FaultPlan { return mpi.NewFaultPlan(seed) }

// NewTensorN allocates an empty order-N tensor.
func NewTensorN(dims []int, capacity int) *TensorN { return nmode.NewTensor(dims, capacity) }

// LoadTNSN reads an order-N FROSTT text tensor from a file.
func LoadTNSN(path string) (*TensorN, error) { return nmode.LoadTNSFile(path) }

// SaveTNSN writes an order-N tensor to a file in FROSTT text form.
func SaveTNSN(path string, t *TensorN) error { return nmode.SaveTNSFile(path, t) }

// BuildCSFN converts an order-N tensor to the CSF tree; modeOrder nil
// puts mode 0 at the root with the remaining modes short-to-long.
func BuildCSFN(t *TensorN, modeOrder []int) (*CSFN, error) { return nmode.Build(t, modeOrder) }

// MTTKRPN computes the order-N MTTKRP for the CSF tree's root mode,
// one shot over an already-built tree. For repeated products prefer
// NewExecutorN / NewMultiExecutorN, whose pooled workspaces make
// steady-state calls allocation-free.
func MTTKRPN(c *CSFN, factors []*Matrix, out *Matrix, opts OptionsN) error {
	return nmode.MTTKRP(c, factors, out, opts)
}

// NewExecutorN preprocesses one mode of an order-N tensor (CSF build,
// optional MB blocking per opts.Grid) for repeated MTTKRP products.
func NewExecutorN(t *TensorN, mode int, opts OptionsN) (*ExecutorN, error) {
	return nmode.NewExecutor(t, mode, opts)
}

// NewMultiExecutorN builds executors for the requested modes (default:
// all) of an order-N tensor — the arbitrary-order counterpart of
// NewMultiExecutor. Third-order tensors are served by the order-3
// kernel families (SPLATT/MB/RankB per opts); higher orders run on the
// pooled N-mode CSF executors.
func NewMultiExecutorN(t *TensorN, opts OptionsN, modes ...int) (*MultiExecutorN, error) {
	return engine.NewNEngine(t, opts, modes...)
}

// CPALSN decomposes an order-N tensor with alternating least squares
// on the unified engine; the sweep loop is shared with CPALS.
func CPALSN(t *TensorN, opts CPNOptions) (*CPNResult, error) { return cpd.CPALSN(t, opts) }

// Datasets returns the Table II data-set registry names.
func Datasets() []string { return gen.Names() }

// LookupDataset fetches a Table II data-set spec by name.
func LookupDataset(name string) (DatasetSpec, error) { return gen.Lookup(name) }

// Fingerprint returns the content hash identifying t up to nonzero
// storage order — the executor-cache key of the spblockd service (see
// internal/server): two uploads of the same logical tensor share one
// cached executor stack.
func Fingerprint(t *Tensor) string { return server.Fingerprint(t) }

// CPALSEngine decomposes t through a caller-supplied multi-mode
// engine, reusing its preprocessed per-mode executors instead of
// building fresh ones — the serving-cache path of spblockd.
func CPALSEngine(t *Tensor, eng *MultiExecutor, opts CPOptions) (*CPResult, error) {
	return cpd.CPALSEngine(t, eng, opts)
}
