module spblock

go 1.22
