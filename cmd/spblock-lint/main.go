// Command spblock-lint runs the spblock static-analysis suite — the
// compile-time guards for the hot-path zero-allocation and
// workspace-ownership contracts plus parallel-kernel hygiene — over the
// requested packages.
//
// Usage:
//
//	spblock-lint [-analyzers list] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors. Diagnostics on lines carrying a reasoned //spblock:allow
// comment are suppressed; see internal/analysis for the annotation
// conventions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spblock/internal/analysis"
	"spblock/internal/analysis/hotpathalloc"
	"spblock/internal/analysis/kernelpar"
	"spblock/internal/analysis/workspaceescape"
)

var all = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	workspaceescape.Analyzer,
	kernelpar.Analyzer,
}

func main() {
	names := flag.String("analyzers", "",
		"comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: spblock-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "spblock-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	prog, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spblock-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spblock-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", prog.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
