// Command spblock-lint runs the spblock static-analysis suite — the
// compile-time guards for the hot-path zero-allocation,
// workspace-ownership, atomic-discipline, fault-tolerance error-flow
// and directive-coverage contracts plus parallel-kernel hygiene — over
// the requested packages.
//
// Usage:
//
//	spblock-lint [-analyzers list] [-json] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any diagnostic is reported, 2 on usage or load
// errors. With -json the findings are written to stdout as a JSON
// array of {analyzer, file, line, column, message} objects (an empty
// array when clean), for CI artifact consumption. Diagnostics on lines
// carrying a reasoned //spblock:allow comment are suppressed; see
// internal/analysis for the annotation conventions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"spblock/internal/analysis"
	"spblock/internal/analysis/atomicfield"
	"spblock/internal/analysis/errdrop"
	"spblock/internal/analysis/hotcover"
	"spblock/internal/analysis/hotpathalloc"
	"spblock/internal/analysis/kernelpar"
	"spblock/internal/analysis/workspaceescape"
)

var all = []*analysis.Analyzer{
	hotpathalloc.Analyzer,
	workspaceescape.Analyzer,
	kernelpar.Analyzer,
	atomicfield.Analyzer,
	errdrop.Analyzer,
	hotcover.Analyzer,
}

// jsonDiag is one finding in -json output.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	names := flag.String("analyzers", "",
		"comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	asJSON := flag.Bool("json", false, "write findings to stdout as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: spblock-lint [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *names != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "spblock-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	prog, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spblock-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spblock-lint:", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			pos := prog.Position(d.Pos)
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "spblock-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", prog.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
