// Command cpd runs a CP-ALS decomposition on a FROSTT-style .tns file
// using any of the library's MTTKRP kernels, and reports the fit trace
// and per-iteration timing — the end-to-end application the paper's
// kernel optimisations accelerate.
//
// Usage:
//
//	cpd -in tensor.tns -rank 32 -method mbrankb -autotune
//	cpd -in tensor.tns -rank 16 -method splatt -iters 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spblock"
)

func main() {
	var (
		in       = flag.String("in", "", "input .tns file (required)")
		rank     = flag.Int("rank", 16, "decomposition rank R")
		method   = flag.String("method", "splatt", "kernel: coo|splatt|mb|rankb|mbrankb")
		autotune = flag.Bool("autotune", false, "run the Sec. V-C heuristic to choose block sizes")
		grid     = flag.String("grid", "", "explicit MB grid QxRxS (with -method mb|mbrankb)")
		bs       = flag.Int("bs", 0, "explicit RankB strip width in columns")
		iters    = flag.Int("iters", 50, "maximum ALS sweeps")
		tol      = flag.Float64("tol", 1e-5, "fit-change convergence tolerance")
		seed     = flag.Int64("seed", 1, "factor initialisation seed")
		workers  = flag.Int("workers", 0, "kernel parallelism (0 = GOMAXPROCS)")
		outPath  = flag.String("factors", "", "optional prefix to write factor matrices as CSV")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("need -in tensor.tns"))
	}

	x, err := spblock.LoadTNS(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %s\n", spblock.ComputeStats(x))

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	plan := spblock.Plan{Method: m, Grid: [3]int{1, 1, 1}, RankBlockCols: *bs, Workers: *workers}
	if *grid != "" {
		if _, err := fmt.Sscanf(strings.ToLower(*grid), "%dx%dx%d",
			&plan.Grid[0], &plan.Grid[1], &plan.Grid[2]); err != nil {
			fatal(fmt.Errorf("bad -grid %q: %w", *grid, err))
		}
	}
	if *autotune {
		tuned, trials, err := spblock.Autotune(x, *rank, m, spblock.AutotuneOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		plan = tuned
		fmt.Printf("autotune: %d trials -> %s\n", len(trials), plan)
	}
	fmt.Printf("plan: %s\n", plan)
	if kv := spblock.PlanKernel(plan, *rank); kv.Name != "" {
		fmt.Printf("kernel: %s (rank-strip register blocking, width %d)\n", kv.Name, kv.Width)
	}

	start := time.Now()
	res, err := spblock.CPALS(x, spblock.CPOptions{
		Rank: *rank, MaxIters: *iters, Tol: *tol, Plan: plan, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	for i, fit := range res.Fits {
		fmt.Printf("sweep %3d: fit = %.6f\n", i+1, fit)
	}
	fmt.Printf("done: fit=%.6f sweeps=%d converged=%v time=%.2fs (%.3fs/sweep)\n",
		res.Fit(), res.Iters, res.Converged, elapsed.Seconds(),
		elapsed.Seconds()/float64(maxInt(res.Iters, 1)))

	if *outPath != "" {
		for n, f := range res.Factors {
			path := fmt.Sprintf("%s.mode%d.csv", *outPath, n+1)
			if err := writeCSV(path, f, res.Lambda, n == 0); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func parseMethod(s string) (spblock.Method, error) {
	switch strings.ToLower(s) {
	case "coo":
		return spblock.MethodCOO, nil
	case "splatt":
		return spblock.MethodSPLATT, nil
	case "mb":
		return spblock.MethodMB, nil
	case "rankb":
		return spblock.MethodRankB, nil
	case "mbrankb", "mb+rankb":
		return spblock.MethodMBRankB, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func writeCSV(path string, m *spblock.Matrix, lambda []float64, withLambda bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if withLambda {
		for q, l := range lambda {
			if q > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", l)
		}
		fmt.Fprintln(f)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for q, v := range row {
			if q > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprintf(f, "%g", v)
		}
		fmt.Fprintln(f)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cpd:", err)
	os.Exit(1)
}
