package main

import (
	"testing"

	"spblock"
)

func TestParseMethod(t *testing.T) {
	cases := map[string]spblock.Method{
		"coo": spblock.MethodCOO, "SPLATT": spblock.MethodSPLATT,
		"mb": spblock.MethodMB, "rankb": spblock.MethodRankB,
		"mbrankb": spblock.MethodMBRankB, "MB+RankB": spblock.MethodMBRankB,
	}
	for in, want := range cases {
		got, err := parseMethod(in)
		if err != nil || got != want {
			t.Fatalf("parseMethod(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseMethod("zzz"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
