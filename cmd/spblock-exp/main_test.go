package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,64")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 64 {
		t.Fatalf("parseInts = %v", got)
	}
	if out, err := parseInts(""); err != nil || out != nil {
		t.Fatalf("empty input: %v %v", out, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad list accepted")
	}
}
