// Command spblock-exp regenerates the tables and figures of the
// paper's evaluation (Sec. IV and VI). Each experiment prints an
// aligned text table (or CSV with -csv).
//
// Usage:
//
//	spblock-exp -exp fig2                 # arithmetic intensity model
//	spblock-exp -exp table1               # pressure point analysis
//	spblock-exp -exp table2               # data-set inventory
//	spblock-exp -exp fig4                 # RankB block-size sweep
//	spblock-exp -exp fig5                 # MB grid sweep
//	spblock-exp -exp fig5traffic          # MB grid sweep, simulated traffic
//	spblock-exp -exp tuning               # autotuning strategy comparison
//	spblock-exp -exp fig6                 # speedup over SPLATT
//	spblock-exp -exp fig6traffic          # simulated DRAM traffic view
//	spblock-exp -exp table3               # distributed 3D vs 4D
//	spblock-exp -exp chaos                # CP-ALS under injected faults
//	spblock-exp -exp imbalance            # static vs stealing vs adaptive scheduling
//	spblock-exp -exp ooc                  # out-of-core CP-ALS working-set sweep
//	spblock-exp -exp all                  # everything
//
// -scale shrinks or grows the data sets (1.0 = the registry's bench
// scale, which is itself a documented scale-down of the paper's
// shapes); -quick is shorthand for the smoke-test configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spblock/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig2|table1|table2|fig4|fig5|fig5traffic|fig6|fig6traffic|table3|chaos|tuning|imbalance|ooc|all")
		scale   = flag.Float64("scale", 1.0, "data-set scale factor (1.0 = bench scale)")
		reps    = flag.Int("reps", 3, "timed repetitions per measurement (best kept)")
		workers = flag.Int("workers", 0, "kernel parallelism (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 42, "generator seed")
		quick   = flag.Bool("quick", false, "tiny smoke-test configuration")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		ranks   = flag.String("ranks", "", "comma-separated rank list for fig6 (default 16..512)")
		nodes   = flag.String("nodes", "", "comma-separated node list for table3 (default 1..64)")
		sets    = flag.String("datasets", "", "comma-separated dataset list for fig6")
		trRank  = flag.Int("trafficrank", 128, "rank for fig6traffic")

		chaosKinds = flag.String("chaos-kinds", "", "comma-separated fault kinds for chaos (default none,drop,dup,corrupt,delay,stall,crash)")
		chaosRate  = flag.Float64("chaos-rate", 0.02, "per-message fault probability for chaos link faults")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault-schedule seed for chaos")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Reps: *reps, Workers: *workers, Seed: *seed}
	if *quick {
		cfg = bench.Quick()
	}

	rankList, err := parseInts(*ranks)
	if err != nil {
		fatal(err)
	}
	nodeList, err := parseInts(*nodes)
	if err != nil {
		fatal(err)
	}
	var setList []string
	if *sets != "" {
		setList = strings.Split(*sets, ",")
	}
	var kindList []string
	if *chaosKinds != "" {
		kindList = strings.Split(*chaosKinds, ",")
	}

	type experiment struct {
		name string
		run  func() (*bench.Table, error)
	}
	experiments := []experiment{
		{"fig2", func() (*bench.Table, error) { return bench.Fig2() }},
		{"table1", func() (*bench.Table, error) { return bench.Table1(cfg) }},
		{"table2", func() (*bench.Table, error) { return bench.Table2(cfg) }},
		{"fig4", func() (*bench.Table, error) { return bench.Fig4(cfg) }},
		{"fig5", func() (*bench.Table, error) { return bench.Fig5(cfg) }},
		{"fig5traffic", func() (*bench.Table, error) { return bench.Fig5Traffic(cfg, *trRank) }},
		{"fig6", func() (*bench.Table, error) { return bench.Fig6(cfg, rankList, setList) }},
		{"fig6traffic", func() (*bench.Table, error) { return bench.Fig6Traffic(cfg, *trRank, setList) }},
		{"table3", func() (*bench.Table, error) { return bench.Table3(cfg, nodeList) }},
		{"chaos", func() (*bench.Table, error) { return bench.Chaos(cfg, kindList, *chaosRate, *chaosSeed) }},
		{"tuning", func() (*bench.Table, error) { return bench.TuningTable(cfg, *trRank, setList) }},
		{"imbalance", func() (*bench.Table, error) { return bench.Imbalance(cfg) }},
		{"ooc", func() (*bench.Table, error) { return bench.OOC(cfg) }},
	}

	matched := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		matched = true
		start := time.Now()
		table, err := e.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		if *csv {
			if err := table.RenderCSV(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			if err := table.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
		}
	}
	if !matched {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spblock-exp:", err)
	os.Exit(1)
}
