package main

import "testing"

func TestGenerateCustom(t *testing.T) {
	x, err := generateCustom("10x20x30", 100, "clustered", 1)
	if err != nil {
		t.Fatal(err)
	}
	if x.Dims[0] != 10 || x.Dims[1] != 20 || x.Dims[2] != 30 {
		t.Fatalf("dims = %v", x.Dims)
	}
	if x.NNZ() == 0 {
		t.Fatal("empty tensor")
	}
	if _, err := generateCustom("10x20x30", 50, "poisson", 1); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		dims, kind string
		nnz        int
	}{
		{"10", "clustered", 5},
		{"axbxc", "clustered", 5},
		{"12x0x9", "clustered", 5},
		{"10x20x30", "clustered", 0},
		{"10x20x30", "wat", 5},
		{"10x20x30x5", "wat", 5},
		{"10x20x30x5", "clustered", 0},
	} {
		if _, err := generateCustom(bad.dims, bad.nnz, bad.kind, 1); err == nil {
			t.Fatalf("accepted %+v", bad)
		}
	}
}

func TestGenerateCustomOrderN(t *testing.T) {
	for _, kind := range []string{"clustered", "poisson"} {
		x, err := generateCustom("10x20x30x8", 200, kind, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if x.Order() != 4 {
			t.Fatalf("%s: order = %d", kind, x.Order())
		}
		want := []int{10, 20, 30, 8}
		for m, d := range want {
			if x.Dims[m] != d {
				t.Fatalf("%s: dims = %v, want %v", kind, x.Dims, want)
			}
		}
		if x.NNZ() == 0 {
			t.Fatalf("%s: empty tensor", kind)
		}
		if err := x.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestGenerateRegistry(t *testing.T) {
	x, err := generateRegistry("Poisson1", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() == 0 {
		t.Fatal("empty tensor")
	}
	if _, err := generateRegistry("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
