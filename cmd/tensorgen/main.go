// Command tensorgen writes the synthetic data sets of Table II (or any
// custom shape, of any order) as FROSTT-style .tns files.
//
// Usage:
//
//	tensorgen -dataset Poisson2 -out poisson2.tns
//	tensorgen -dataset Netflix -scale 0.1 -out netflix-small.tns
//	tensorgen -dims 1000x800x600 -nnz 500000 -kind clustered -out custom.tns
//	tensorgen -dims 1000x800x600x24 -nnz 500000 -out order4.tns
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spblock"
	"spblock/internal/gen"
	"spblock/internal/nmode"
	"spblock/internal/tensor"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table II data set name (see -list)")
		list    = flag.Bool("list", false, "list available data sets and exit")
		scale   = flag.Float64("scale", 1.0, "scale factor on the bench-size shape")
		dims    = flag.String("dims", "", "custom shape I0xI1x...xI{N-1}, any order >= 2 (overrides -dataset)")
		nnz     = flag.Int("nnz", 0, "custom nonzero count (with -dims)")
		kind    = flag.String("kind", "clustered", "custom generator: poisson|clustered")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output .tns path (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available data sets (Table II):")
		for _, name := range gen.Names() {
			spec, _ := gen.Lookup(name)
			fmt.Printf("  %-9s %-7s paper %v nnz=%.3g | bench %v nnz=%d\n",
				name, spec.Kind, spec.PaperDims, float64(spec.PaperNNZ),
				spec.BenchDims, spec.BenchNNZ)
		}
		return
	}

	var (
		t   *nmode.Tensor
		err error
	)
	switch {
	case *dims != "":
		t, err = generateCustom(*dims, *nnz, *kind, *seed)
	case *dataset != "":
		var coo *tensor.COO
		coo, err = generateRegistry(*dataset, *scale, *seed)
		if err == nil {
			t = tensor.ToNMode(coo)
		}
	default:
		err = fmt.Errorf("need -dataset or -dims (try -list)")
	}
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "tensorgen: %s\n", describe(t))

	if *out == "" {
		if err := nmode.WriteTNS(os.Stdout, t); err != nil {
			fatal(err)
		}
		return
	}
	if err := spblock.SaveTNSN(*out, t); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tensorgen: wrote %s\n", *out)
}

// describe summarises the generated tensor: the full order-3 stats for
// third-order shapes (matching the historical output), a shape/nnz
// /density line otherwise.
func describe(t *nmode.Tensor) string {
	if t.Order() == 3 {
		if coo, err := tensor.FromNMode(t); err == nil {
			return spblock.ComputeStats(coo).String()
		}
	}
	dense := 1.0
	for _, d := range t.Dims {
		dense *= float64(d)
	}
	density := 0.0
	if dense > 0 {
		density = float64(t.NNZ()) / dense
	}
	return fmt.Sprintf("%v nnz=%d density=%.3g", t.Dims, t.NNZ(), density)
}

func generateRegistry(name string, scale float64, seed int64) (*tensor.COO, error) {
	spec, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	if scale == 1 {
		return spec.Generate(seed)
	}
	d := spec.BenchDims
	for m := 0; m < 3; m++ {
		v := int(float64(d[m]) * scale)
		if v < 8 {
			v = 8
		}
		d[m] = v
	}
	n := int(float64(spec.BenchNNZ) * scale)
	if n < 100 {
		n = 100
	}
	return spec.GenerateAt(d, n, seed)
}

func generateCustom(dimsStr string, nnz int, kind string, seed int64) (*nmode.Tensor, error) {
	parts := strings.Split(strings.ToLower(dimsStr), "x")
	if len(parts) < 2 {
		return nil, fmt.Errorf("dims must be I0xI1x...x I{N-1} with N >= 2, got %q", dimsStr)
	}
	d := make([]int, len(parts))
	for m := range parts {
		if _, err := fmt.Sscan(parts[m], &d[m]); err != nil {
			return nil, fmt.Errorf("bad dims %q: %w", dimsStr, err)
		}
		if d[m] <= 0 {
			return nil, fmt.Errorf("bad dims %q: mode %d must be positive", dimsStr, m)
		}
	}
	if nnz <= 0 {
		return nil, fmt.Errorf("custom shapes need -nnz > 0")
	}
	// Third-order shapes keep the original order-3 generators so the
	// output for a given seed is unchanged from older releases.
	if len(d) == 3 {
		d3 := tensor.Dims{d[0], d[1], d[2]}
		var (
			coo *tensor.COO
			err error
		)
		switch kind {
		case "poisson":
			coo, err = gen.Poisson(gen.PoissonParams{Dims: d3, Events: nnz + nnz/8}, seed)
		case "clustered":
			coo, err = gen.Clustered(gen.ClusteredParams{Dims: d3, NNZ: nnz}, seed)
		default:
			return nil, fmt.Errorf("unknown kind %q (poisson|clustered)", kind)
		}
		if err != nil {
			return nil, err
		}
		return tensor.ToNMode(coo), nil
	}
	switch kind {
	case "poisson":
		return gen.PoissonN(gen.PoissonNParams{Dims: d, Events: nnz + nnz/8}, seed)
	case "clustered":
		return gen.ClusteredN(gen.ClusteredNParams{Dims: d, NNZ: nnz}, seed)
	default:
		return nil, fmt.Errorf("unknown kind %q (poisson|clustered)", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
