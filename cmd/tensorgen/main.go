// Command tensorgen writes the synthetic data sets of Table II (or any
// custom shape) as FROSTT-style .tns files.
//
// Usage:
//
//	tensorgen -dataset Poisson2 -out poisson2.tns
//	tensorgen -dataset Netflix -scale 0.1 -out netflix-small.tns
//	tensorgen -dims 1000x800x600 -nnz 500000 -kind clustered -out custom.tns
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spblock"
	"spblock/internal/gen"
	"spblock/internal/tensor"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "Table II data set name (see -list)")
		list    = flag.Bool("list", false, "list available data sets and exit")
		scale   = flag.Float64("scale", 1.0, "scale factor on the bench-size shape")
		dims    = flag.String("dims", "", "custom shape IxJxK (overrides -dataset)")
		nnz     = flag.Int("nnz", 0, "custom nonzero count (with -dims)")
		kind    = flag.String("kind", "clustered", "custom generator: poisson|clustered")
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "output .tns path (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("available data sets (Table II):")
		for _, name := range gen.Names() {
			spec, _ := gen.Lookup(name)
			fmt.Printf("  %-9s %-7s paper %v nnz=%.3g | bench %v nnz=%d\n",
				name, spec.Kind, spec.PaperDims, float64(spec.PaperNNZ),
				spec.BenchDims, spec.BenchNNZ)
		}
		return
	}

	var (
		t   *tensor.COO
		err error
	)
	switch {
	case *dims != "":
		t, err = generateCustom(*dims, *nnz, *kind, *seed)
	case *dataset != "":
		t, err = generateRegistry(*dataset, *scale, *seed)
	default:
		err = fmt.Errorf("need -dataset or -dims (try -list)")
	}
	if err != nil {
		fatal(err)
	}

	stats := spblock.ComputeStats(t)
	fmt.Fprintf(os.Stderr, "tensorgen: %s\n", stats)

	if *out == "" {
		if err := spblock.WriteTNS(os.Stdout, t); err != nil {
			fatal(err)
		}
		return
	}
	if err := spblock.SaveTNS(*out, t); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tensorgen: wrote %s\n", *out)
}

func generateRegistry(name string, scale float64, seed int64) (*tensor.COO, error) {
	spec, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	if scale == 1 {
		return spec.Generate(seed)
	}
	d := spec.BenchDims
	for m := 0; m < 3; m++ {
		v := int(float64(d[m]) * scale)
		if v < 8 {
			v = 8
		}
		d[m] = v
	}
	n := int(float64(spec.BenchNNZ) * scale)
	if n < 100 {
		n = 100
	}
	return spec.GenerateAt(d, n, seed)
}

func generateCustom(dimsStr string, nnz int, kind string, seed int64) (*tensor.COO, error) {
	parts := strings.Split(strings.ToLower(dimsStr), "x")
	if len(parts) != 3 {
		return nil, fmt.Errorf("dims must be IxJxK, got %q", dimsStr)
	}
	var d tensor.Dims
	for m := 0; m < 3; m++ {
		if _, err := fmt.Sscan(parts[m], &d[m]); err != nil {
			return nil, fmt.Errorf("bad dims %q: %w", dimsStr, err)
		}
	}
	if nnz <= 0 {
		return nil, fmt.Errorf("custom shapes need -nnz > 0")
	}
	switch kind {
	case "poisson":
		return gen.Poisson(gen.PoissonParams{Dims: d, Events: nnz + nnz/8}, seed)
	case "clustered":
		return gen.Clustered(gen.ClusteredParams{Dims: d, NNZ: nnz}, seed)
	default:
		return nil, fmt.Errorf("unknown kind %q (poisson|clustered)", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
