// Command spblockd runs the multi-tenant decomposition service: a
// long-running HTTP server that accepts FROSTT-style .tns uploads and
// serves MTTKRP / CP-ALS / CP-APR jobs to concurrent clients, reusing
// one cached executor stack per distinct tensor (see internal/server).
//
// Usage:
//
//	spblockd -addr :8080 -method splatt -workers 4 -max-bytes 1073741824
//
// Endpoints:
//
//	POST /tensors   upload a .tns body; responds with its fingerprint
//	POST /jobs      run a job: {"fingerprint":..., "kind":"cpals", "rank":8, ...}
//	GET  /metrics   Prometheus-style scrape of job, cache and executor state
//	GET  /healthz   liveness probe
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"spblock/internal/core"
	"spblock/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		method  = flag.String("method", "splatt", "cached executors' kernel: coo|splatt|mb|rankb|mbrankb")
		grid    = flag.String("grid", "", "explicit MB grid QxRxS (with -method mb|mbrankb)")
		bs      = flag.Int("bs", 0, "explicit RankB strip width in columns")
		workers = flag.Int("workers", 0, "per-executor parallelism (0 = GOMAXPROCS)")
		conc    = flag.Int("concurrency", 0, "max jobs running at once (0 = GOMAXPROCS)")
		quota   = flag.Int("tenant-quota", 0, "max in-flight jobs per tenant (0 = concurrency)")
		budget  = flag.Int64("max-bytes", 0, "executor cache byte budget (0 = unlimited)")
	)
	flag.Parse()

	m, err := parseMethod(*method)
	if err != nil {
		fatal(err)
	}
	plan := core.Plan{Method: m, Grid: [3]int{1, 1, 1}, RankBlockCols: *bs, Workers: *workers}
	if *grid != "" {
		if _, err := fmt.Sscanf(strings.ToLower(*grid), "%dx%dx%d",
			&plan.Grid[0], &plan.Grid[1], &plan.Grid[2]); err != nil {
			fatal(fmt.Errorf("bad -grid %q: %w", *grid, err))
		}
	}

	s := server.New(server.Options{
		Cache:         server.CacheConfig{MaxBytes: *budget, Plan: plan},
		MaxConcurrent: *conc,
		TenantQuota:   *quota,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("spblockd listening on %s (plan %s)\n", *addr, plan)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func parseMethod(s string) (core.Method, error) {
	switch strings.ToLower(s) {
	case "coo":
		return core.MethodCOO, nil
	case "splatt":
		return core.MethodSPLATT, nil
	case "mb":
		return core.MethodMB, nil
	case "rankb":
		return core.MethodRankB, nil
	case "mbrankb", "mb+rankb":
		return core.MethodMBRankB, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spblockd:", err)
	os.Exit(1)
}
