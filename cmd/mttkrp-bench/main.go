// Command mttkrp-bench times the MTTKRP kernel family on a tensor —
// either a FROSTT .tns file or a named Table II generator — the way
// splatt --bench does, reporting time, GFLOP/s and speedup over the
// SPLATT baseline, with optional autotuned block sizes.
//
// Usage:
//
//	mttkrp-bench -dataset Poisson2 -rank 128
//	mttkrp-bench -in tensor.tns -rank 64 -autotune -reps 5
package main

import (
	"flag"
	"fmt"
	"os"

	"spblock"
	"spblock/internal/bench"
	"spblock/internal/gen"
	"spblock/internal/tensor"
)

func main() {
	var (
		in       = flag.String("in", "", "input .tns file")
		dataset  = flag.String("dataset", "", "Table II data set name instead of -in")
		scale    = flag.Float64("scale", 1.0, "scale for -dataset")
		rank     = flag.Int("rank", 64, "decomposition rank R")
		reps     = flag.Int("reps", 3, "timed repetitions (best kept)")
		workers  = flag.Int("workers", 0, "kernel parallelism (0 = GOMAXPROCS)")
		autotune = flag.Bool("autotune", true, "tune MB/RankB block sizes (Sec. V-C heuristic)")
		seed     = flag.Int64("seed", 42, "generator/factor seed")
	)
	flag.Parse()

	x, err := loadTensor(*in, *dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	stats := spblock.ComputeStats(x)
	profile, err := tensor.ProfileTensor(x)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tensor: %s\n", profile)
	fmt.Printf("rank:   %d   (factor B is %.1f MB)\n\n",
		*rank, float64(x.Dims[1]**rank*8)/1e6)

	plans := []spblock.Plan{
		{Method: spblock.MethodCOO},
		{Method: spblock.MethodSPLATT, Workers: *workers},
		{Method: spblock.MethodMB, Grid: [3]int{1, 2, 1}, Workers: *workers},
		{Method: spblock.MethodRankB, RankBlockCols: min(64, *rank), Workers: *workers},
		{Method: spblock.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: min(64, *rank), Workers: *workers},
	}
	if *autotune {
		opts := spblock.AutotuneOptions{Trials: 1, Seed: *seed, Workers: *workers}
		for i, p := range plans {
			if p.Method == spblock.MethodCOO || p.Method == spblock.MethodSPLATT {
				continue
			}
			tuned, _, err := spblock.Autotune(x, *rank, p.Method, opts)
			if err != nil {
				fatal(err)
			}
			plans[i] = tuned
			plans[i].Workers = *workers
		}
	}

	b := randomMatrix(x.Dims[1], *rank, *seed+1)
	c := randomMatrix(x.Dims[2], *rank, *seed+2)
	out := spblock.NewMatrix(x.Dims[0], *rank)

	var baseline float64
	fmt.Printf("%-36s %10s %9s %9s\n", "plan", "time (s)", "GFLOP/s", "speedup")
	for _, plan := range plans {
		exec, err := spblock.NewExecutor(x, plan)
		if err != nil {
			fatal(err)
		}
		if err := exec.Run(b, c, out); err != nil { // warm-up
			fatal(err)
		}
		sec := bench.TimeBest(*reps, func() {
			if err := exec.Run(b, c, out); err != nil {
				panic(err)
			}
		})
		gf := bench.GFLOPS(int64(stats.NNZ), int64(stats.Fibers), *rank, sec)
		if plan.Method == spblock.MethodSPLATT {
			baseline = sec
		}
		speedup := "-"
		if baseline > 0 {
			speedup = fmt.Sprintf("%.2fx", baseline/sec)
		}
		fmt.Printf("%-36s %10.4f %9.2f %9s\n", plan.String(), sec, gf, speedup)
	}
}

func loadTensor(in, dataset string, scale float64, seed int64) (*tensor.COO, error) {
	switch {
	case in != "":
		return spblock.LoadTNS(in)
	case dataset != "":
		spec, err := gen.Lookup(dataset)
		if err != nil {
			return nil, err
		}
		if scale == 1 {
			return spec.Generate(seed)
		}
		d := spec.BenchDims
		for m := 0; m < 3; m++ {
			if v := int(float64(d[m]) * scale); v >= 8 {
				d[m] = v
			} else {
				d[m] = 8
			}
		}
		return spec.GenerateAt(d, int(float64(spec.BenchNNZ)*scale), seed)
	default:
		return nil, fmt.Errorf("need -in or -dataset")
	}
}

func randomMatrix(rows, cols int, seed int64) *spblock.Matrix {
	m := spblock.NewMatrix(rows, cols)
	state := uint64(seed)
	for i := range m.Data {
		m.Data[i] = float64(gen.SplitMix64(&state)%1000)/1000 + 0.001
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mttkrp-bench:", err)
	os.Exit(1)
}
