// Command mttkrp-bench times the MTTKRP kernel family on a tensor —
// either a FROSTT .tns file or a named Table II generator — the way
// splatt --bench does, reporting time, GFLOP/s and speedup over the
// SPLATT baseline, with optional autotuned block sizes.
//
// Third-order tensors run the full order-3 plan table. Higher-order
// tensors (an order-N .tns, or the synthetic Poisson4 data set) run the
// unified N-mode engine's configuration ladder instead.
//
// Usage:
//
//	mttkrp-bench -dataset Poisson2 -rank 128
//	mttkrp-bench -dataset Poisson4 -rank 64
//	mttkrp-bench -in tensor.tns -rank 64 -autotune -reps 5
//
// -sched runs every parallel plan under the named work-distribution
// policy (static shares, chunked work stealing, or the adaptive
// controller — see internal/sched); the BENCH record stores the
// scheduler each executor actually resolved to, so an adaptive run
// records whether the controller promoted.
//
// With -json the run also emits a versioned BENCH record (plan, best
// ns/op, per-run counters from the kernel instrumentation layer, worker
// load imbalance, resolved scheduler) for CI artifacts; -baseline
// compares the fresh record against a committed one and fails when any
// shared plan regresses past -maxregress. For comparable records across
// machines, pin the sweep with -autotune=false.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spblock"
	"spblock/internal/bench"
	"spblock/internal/gen"
	"spblock/internal/nmode"
	"spblock/internal/tensor"
)

func main() {
	var (
		in         = flag.String("in", "", "input .tns file (any order >= 2)")
		dataset    = flag.String("dataset", "", "Table II data set name, or Poisson4, instead of -in")
		scale      = flag.Float64("scale", 1.0, "scale for -dataset")
		rank       = flag.Int("rank", 64, "decomposition rank R")
		reps       = flag.Int("reps", 3, "timed repetitions (best kept)")
		workers    = flag.Int("workers", 0, "kernel parallelism (0 = GOMAXPROCS)")
		autotune   = flag.Bool("autotune", true, "tune MB/RankB block sizes (Sec. V-C heuristic)")
		seed       = flag.Int64("seed", 42, "generator/factor seed")
		widths     = flag.String("widths", "", `sweep rank-strip widths as extra RankB plans: comma-separated list, or "all" for every registered kernel width`)
		schedFlag  = flag.String("sched", "static", "work-distribution policy for parallel plans: static|steal|adaptive")
		jsonOut    = flag.String("json", "", "also write a versioned BENCH record to this path")
		baseline   = flag.String("baseline", "", "compare against a committed BENCH record; exit 1 on regression")
		maxregress = flag.Float64("maxregress", 2.0, "regression threshold for -baseline (ratio over baseline ns/op)")
	)
	flag.Parse()

	nt, err := loadTensor(*in, *dataset, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	name := *dataset
	if name == "" {
		name = *in
	}
	sweep, err := parseWidths(*widths, *rank)
	if err != nil {
		fatal(err)
	}
	policy, err := spblock.ParseSchedPolicy(*schedFlag)
	if err != nil {
		fatal(err)
	}
	var rec *bench.Record
	if nt.Order() == 3 {
		x, err := tensor.FromNMode(nt)
		if err != nil {
			fatal(err)
		}
		rec = bench3(x, name, *rank, *reps, *workers, *autotune, *seed, sweep, policy)
	} else {
		rec = benchN(nt, name, *rank, *reps, *workers, *seed, sweep, policy)
	}
	if *jsonOut != "" {
		if err := bench.WriteRecord(*jsonOut, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonOut)
	}
	if *baseline != "" {
		base, err := bench.LoadRecord(*baseline)
		if err != nil {
			fatal(err)
		}
		if regressions := bench.CompareRecords(base, rec, *maxregress); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "mttkrp-bench: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions past %.2fx of %s\n", *maxregress, *baseline)
	}
}

func bench3(x *tensor.COO, name string, rank, reps, workers int, autotune bool, seed int64, sweep []int, policy spblock.SchedPolicy) *bench.Record {
	stats := spblock.ComputeStats(x)
	profile, err := tensor.ProfileTensor(x)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tensor: %s\n", profile)
	fmt.Printf("rank:   %d   (factor B is %.1f MB)\n\n",
		rank, float64(x.Dims[1]*rank*8)/1e6)

	plans := []spblock.Plan{
		{Method: spblock.MethodCOO},
		{Method: spblock.MethodSPLATT, Workers: workers, Sched: policy},
		{Method: spblock.MethodMB, Grid: [3]int{1, 2, 1}, Workers: workers, Sched: policy},
		{Method: spblock.MethodRankB, RankBlockCols: min(64, rank), Workers: workers, Sched: policy},
		{Method: spblock.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: min(64, rank), Workers: workers, Sched: policy},
	}
	if autotune {
		opts := spblock.AutotuneOptions{Trials: 1, Seed: seed, Workers: workers}
		for i, p := range plans {
			if p.Method == spblock.MethodCOO || p.Method == spblock.MethodSPLATT {
				continue
			}
			tuned, _, err := spblock.Autotune(x, rank, p.Method, opts)
			if err != nil {
				fatal(err)
			}
			plans[i] = tuned
			plans[i].Workers = workers
			plans[i].Sched = policy
		}
	}

	b := randomMatrix(x.Dims[1], rank, seed+1)
	c := randomMatrix(x.Dims[2], rank, seed+2)
	out := spblock.NewMatrix(x.Dims[0], rank)

	rec := bench.NewRecord(name, x.Dims[:], x.NNZ(), rank, reps, workers)
	var baseline float64
	run := func(plan spblock.Plan) bench.RecordEntry {
		exec, err := spblock.NewExecutor(x, plan)
		if err != nil {
			fatal(err)
		}
		if err := exec.Run(b, c, out); err != nil { // warm-up
			fatal(err)
		}
		exec.Metrics().Reset() // counters cover exactly the timed window
		sec := bench.TimeBest(reps, func() {
			if err := exec.Run(b, c, out); err != nil {
				panic(err)
			}
		})
		gf := bench.GFLOPS(int64(stats.NNZ), int64(stats.Fibers), rank, sec)
		if plan.Method == spblock.MethodSPLATT {
			baseline = sec
		}
		snap := exec.Metrics().Snapshot()
		entry := bench.RecordEntry{
			Plan:      plan.String(),
			Kernel:    snap.Kernel,
			Sched:     snap.Sched,
			BestNS:    int64(sec * 1e9),
			GFLOPS:    gf,
			Imbalance: snap.Imbalance(),
			Counters:  snap,
		}
		if baseline > 0 && plan.Method != spblock.MethodSPLATT {
			entry.Speedup = baseline / sec
		}
		rec.Entries = append(rec.Entries, entry)
		return entry
	}

	fmt.Printf("%-36s %-8s %10s %9s %9s\n", "plan", "kernel", "time (s)", "GFLOP/s", "speedup")
	for _, plan := range plans {
		e := run(plan)
		speedup := "-"
		if baseline > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(baseline)*1e9/float64(e.BestNS))
		}
		fmt.Printf("%-36s %-8s %10.4f %9.2f %9s\n", e.Plan, kernelLabel(e.Kernel), float64(e.BestNS)/1e9, e.GFLOPS, speedup)
	}
	if len(sweep) > 0 {
		fmt.Printf("\nrank-strip width sweep (rankb):\n")
		fmt.Printf("%-10s %-8s %14s %9s\n", "width", "kernel", "ns/run", "GFLOP/s")
		for _, w := range sweep {
			e := run(spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: w, Workers: workers, Sched: policy})
			fmt.Printf("%-10d %-8s %14d %9.2f\n", w, kernelLabel(e.Kernel), e.BestNS, e.GFLOPS)
		}
	}
	return rec
}

// kernelLabel renders an entry's kernel variant for the console table
// ("-" for plans that never resolve one).
func kernelLabel(k string) string {
	if k == "" {
		return "-"
	}
	return k
}

// parseWidths expands the -widths flag: "all" is every registered
// kernel width that fits the rank (plus the rank itself, the whole-rank
// strip); otherwise a comma-separated list of positive strip widths,
// each capped at the rank.
func parseWidths(s string, rank int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		var ws []int
		for _, w := range spblock.KernelWidths() {
			if w <= rank {
				ws = append(ws, w)
			}
		}
		if len(ws) == 0 || ws[len(ws)-1] != rank {
			ws = append(ws, rank)
		}
		return ws, nil
	}
	var ws []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -widths entry %q", f)
		}
		if w > rank {
			w = rank
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// benchN times the unified order-N engine's configuration ladder on a
// higher-order tensor: plain CSF, rank strips, a multi-dimensional
// block grid, and the combination — each a pooled mode-0 executor.
func benchN(t *nmode.Tensor, name string, rank, reps, workers int, seed int64, sweep []int, policy spblock.SchedPolicy) *bench.Record {
	n := t.Order()
	fmt.Printf("tensor: %v nnz=%d (order %d)\n", t.Dims, t.NNZ(), n)
	fmt.Printf("rank:   %d\n\n", rank)

	grid := make([]int, n)
	for m := range grid {
		grid[m] = 1
	}
	// Split the longest non-output mode so the blocked rows exercise a
	// real grid without changing the root-mode layer structure.
	long := 1
	for m := 2; m < n; m++ {
		if t.Dims[m] > t.Dims[long] {
			long = m
		}
	}
	grid[long] = 2

	rows := []struct {
		name string
		opts spblock.OptionsN
	}{
		{"csf-n", spblock.OptionsN{Workers: workers, Sched: policy}},
		{"csf-n+rankb", spblock.OptionsN{RankBlockCols: min(64, rank), Workers: workers, Sched: policy}},
		{"csf-n+mb", spblock.OptionsN{Grid: grid, Workers: workers, Sched: policy}},
		{"csf-n+mb+rankb", spblock.OptionsN{Grid: grid, RankBlockCols: min(64, rank), Workers: workers, Sched: policy}},
	}
	for _, w := range sweep {
		rows = append(rows, struct {
			name string
			opts spblock.OptionsN
		}{fmt.Sprintf("csf-n+rankb[bs=%d]", w), spblock.OptionsN{RankBlockCols: w, Workers: workers, Sched: policy}})
	}
	// Like Plan.String, keep the historical names for the static policy
	// (the committed baselines' comparison keys) and qualify the rest.
	if policy != spblock.SchedStatic {
		for i := range rows {
			rows[i].name += " sched=" + policy.String()
		}
	}

	factors := make([]*spblock.Matrix, n)
	for m := 1; m < n; m++ {
		factors[m] = randomMatrix(t.Dims[m], rank, seed+int64(m))
	}
	out := spblock.NewMatrix(t.Dims[0], rank)

	rec := bench.NewRecord(name, t.Dims, t.NNZ(), rank, reps, workers)
	var baseline float64
	fmt.Printf("%-36s %-8s %10s %9s %9s\n", "plan", "kernel", "time (s)", "GFLOP/s", "speedup")
	for i, row := range rows {
		exec, err := spblock.NewExecutorN(t, 0, row.opts)
		if err != nil {
			fatal(err)
		}
		if err := exec.Run(factors, out); err != nil { // warm-up
			fatal(err)
		}
		exec.Metrics().Reset() // counters cover exactly the timed window
		sec := bench.TimeBest(reps, func() {
			if err := exec.Run(factors, out); err != nil {
				panic(err)
			}
		})
		// The order-N kernel does ~(order-1) fused multiply-adds of
		// width R per nonzero; reuse the paper's 2R(nnz+fibers) model
		// with the fiber term folded into the nnz walk.
		gf := float64(n-1) * float64(rank) * float64(t.NNZ()) / sec / 1e9
		if i == 0 {
			baseline = sec
		}
		speedup := "-"
		if baseline > 0 {
			speedup = fmt.Sprintf("%.2fx", baseline/sec)
		}
		snap := exec.Metrics().Snapshot()
		entry := bench.RecordEntry{
			Plan:      row.name,
			Kernel:    snap.Kernel,
			Sched:     snap.Sched,
			BestNS:    int64(sec * 1e9),
			GFLOPS:    gf,
			Imbalance: snap.Imbalance(),
			Counters:  snap,
		}
		if i > 0 && baseline > 0 {
			entry.Speedup = baseline / sec
		}
		rec.Entries = append(rec.Entries, entry)
		fmt.Printf("%-36s %-8s %10.4f %9.2f %9s\n", row.name, kernelLabel(snap.Kernel), sec, gf, speedup)
	}
	return rec
}

func loadTensor(in, dataset string, scale float64, seed int64) (*nmode.Tensor, error) {
	switch {
	case in != "":
		return spblock.LoadTNSN(in)
	case dataset == "Poisson4":
		// Order-4 synthetic row: the Poisson1 shape with a short fourth
		// mode, sized so the default run finishes in seconds.
		d := []int{256, 256, 256, 16}
		nnz := 1_000_000
		for m := range d {
			if v := int(float64(d[m]) * scale); v >= 8 {
				d[m] = v
			} else {
				d[m] = 8
			}
		}
		if v := int(float64(nnz) * scale); v >= 100 {
			nnz = v
		} else {
			nnz = 100
		}
		return gen.PoissonN(gen.PoissonNParams{Dims: d, Events: nnz + nnz/8}, seed)
	case dataset != "":
		spec, err := gen.Lookup(dataset)
		if err != nil {
			return nil, err
		}
		var coo *tensor.COO
		if scale == 1 {
			coo, err = spec.Generate(seed)
		} else {
			d := spec.BenchDims
			for m := 0; m < 3; m++ {
				if v := int(float64(d[m]) * scale); v >= 8 {
					d[m] = v
				} else {
					d[m] = 8
				}
			}
			coo, err = spec.GenerateAt(d, int(float64(spec.BenchNNZ)*scale), seed)
		}
		if err != nil {
			return nil, err
		}
		return tensor.ToNMode(coo), nil
	default:
		return nil, fmt.Errorf("need -in or -dataset")
	}
}

func randomMatrix(rows, cols int, seed int64) *spblock.Matrix {
	m := spblock.NewMatrix(rows, cols)
	state := uint64(seed)
	for i := range m.Data {
		m.Data[i] = float64(gen.SplitMix64(&state)%1000)/1000 + 0.001
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mttkrp-bench:", err)
	os.Exit(1)
}
