package spblock_test

import (
	"math/rand"
	"testing"

	"spblock"
	"spblock/internal/bench"
	"spblock/internal/cachesim"
	"spblock/internal/tensor"
)

// The Benchmark* functions below regenerate each table/figure of the
// paper at smoke-test scale (bench.Quick); the full-scale runs behind
// EXPERIMENTS.md go through cmd/spblock-exp. The BenchmarkMTTKRP*
// functions are conventional kernel micro-benchmarks.

func BenchmarkFig2Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(bench.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(bench.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4RankBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(bench.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(bench.Quick()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(bench.Quick(), []int{16, 64}, []string{"Poisson2", "NELL2"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6Traffic(bench.Quick(), 64, []string{"Poisson2"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Distributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(bench.Quick(), []int{1, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOperands builds a shared workload for the kernel micro-benches:
// a 96x2048x96 tensor with 200k nonzeros at rank 128, whose mode-2
// factor (2 MB) exceeds a POWER8-class L2 — the regime the paper's
// optimisations target.
func benchOperands(b *testing.B) (*spblock.Tensor, *spblock.Matrix, *spblock.Matrix, *spblock.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	dims := spblock.Dims{96, 2048, 96}
	x := spblock.NewTensor(dims, 200_000)
	for p := 0; p < 200_000; p++ {
		x.Append(
			int32(rng.Intn(dims[0])),
			int32(rng.Intn(dims[1])),
			int32(rng.Intn(dims[2])),
			rng.Float64(),
		)
	}
	x.Dedup()
	const rank = 128
	bm := spblock.NewMatrix(dims[1], rank)
	cm := spblock.NewMatrix(dims[2], rank)
	for i := range bm.Data {
		bm.Data[i] = rng.Float64()
	}
	for i := range cm.Data {
		cm.Data[i] = rng.Float64()
	}
	return x, bm, cm, spblock.NewMatrix(dims[0], rank)
}

func benchKernel(b *testing.B, plan spblock.Plan) {
	x, bm, cm, out := benchOperands(b)
	exec, err := spblock.NewExecutor(x, plan)
	if err != nil {
		b.Fatal(err)
	}
	stats := spblock.ComputeStats(x)
	flops := 2 * int64(out.Cols) * (int64(stats.NNZ) + int64(stats.Fibers))
	b.SetBytes(flops)                             // reported "MB/s" is really MFLOP/s x 1e-6
	b.ReportAllocs()                              // steady-state Run must stay at 0 allocs/op
	if err := exec.Run(bm, cm, out); err != nil { // warm-up sizes the workspace
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exec.Run(bm, cm, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMTTKRPCOO(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodCOO})
}

func BenchmarkMTTKRPSPLATT(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodSPLATT, Workers: 1})
}

func BenchmarkMTTKRPMB(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodMB, Grid: [3]int{1, 8, 1}, Workers: 1})
}

func BenchmarkMTTKRPRankB(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: 32, Workers: 1})
}

func BenchmarkMTTKRPMBRankB(b *testing.B) {
	benchKernel(b, spblock.Plan{
		Method: spblock.MethodMBRankB, Grid: [3]int{1, 8, 1}, RankBlockCols: 32, Workers: 1,
	})
}

// benchOperandsN builds the order-4 analogue: a 96x512x96x24 tensor
// with 200k nonzeros at rank 64, run through the unified N-mode engine.
func benchOperandsN(b *testing.B) (*spblock.TensorN, []*spblock.Matrix, *spblock.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	dims := []int{96, 512, 96, 24}
	x := spblock.NewTensorN(dims, 200_000)
	coords := make([]int32, 4)
	for p := 0; p < 200_000; p++ {
		for m, d := range dims {
			coords[m] = int32(rng.Intn(d))
		}
		x.Append(coords, rng.Float64())
	}
	if _, err := x.Dedup(); err != nil {
		b.Fatal(err)
	}
	const rank = 64
	factors := make([]*spblock.Matrix, 4)
	for m := 1; m < 4; m++ {
		factors[m] = spblock.NewMatrix(dims[m], rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64()
		}
	}
	return x, factors, spblock.NewMatrix(dims[0], rank)
}

func benchKernelN(b *testing.B, opts spblock.OptionsN) {
	x, factors, out := benchOperandsN(b)
	exec, err := spblock.NewExecutorN(x, 0, opts)
	if err != nil {
		b.Fatal(err)
	}
	flops := int64(x.Order()-1) * int64(out.Cols) * int64(x.NNZ())
	b.SetBytes(flops)                              // reported "MB/s" is really MFLOP/s x 1e-6
	b.ReportAllocs()                               // steady-state Run must stay at 0 allocs/op
	if err := exec.Run(factors, out); err != nil { // warm-up sizes the workspace
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exec.Run(factors, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMTTKRPN(b *testing.B) {
	benchKernelN(b, spblock.OptionsN{Workers: 1})
}

func BenchmarkMTTKRPNRankB(b *testing.B) {
	benchKernelN(b, spblock.OptionsN{RankBlockCols: 32, Workers: 1})
}

func BenchmarkMTTKRPNMB(b *testing.B) {
	benchKernelN(b, spblock.OptionsN{Grid: []int{1, 4, 1, 1}, Workers: 1})
}

func BenchmarkMTTKRPNMBRankB(b *testing.B) {
	benchKernelN(b, spblock.OptionsN{Grid: []int{1, 4, 1, 1}, RankBlockCols: 32, Workers: 1})
}

func BenchmarkBuildCSF(b *testing.B) {
	x, _, _, _ := benchOperands(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spblock.BuildCSF(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildBlocked(b *testing.B) {
	x, _, _, _ := benchOperands(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spblock.BuildBlocked(x, [3]int{2, 8, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheSimSPLATT(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := spblock.NewTensor(spblock.Dims{32, 512, 32}, 20_000)
	for p := 0; p < 20_000; p++ {
		x.Append(int32(rng.Intn(32)), int32(rng.Intn(512)), int32(rng.Intn(32)), 1)
	}
	x.Dedup()
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
			return cachesim.TraceSPLATT(h, csf, cachesim.Options{Rank: 64})
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// Strip packing ablation: the Sec. V-B "stacked strips" rearrangement
// on vs off, same strip width.
func BenchmarkAblationStripPackingOn(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: 32, Workers: 1})
}

func BenchmarkAblationStripPackingOff(b *testing.B) {
	benchKernel(b, spblock.Plan{
		Method: spblock.MethodRankB, RankBlockCols: 32, NoStripPacking: true, Workers: 1,
	})
}

// Register blocking ablation: full-width register-blocked kernel
// (RankBlockCols=0 — registers, no strips) vs the accumulator-array
// SPLATT baseline isolates the load-pressure effect of Table I type 3.
func BenchmarkAblationRegisterBlocking(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: 0, Workers: 1})
}

// Parallel scaling of the slice-sharing scheme (bounded by the host's
// single core, but exercises the work-sharing machinery).
func BenchmarkParallelSPLATT4Workers(b *testing.B) {
	benchKernel(b, spblock.Plan{Method: spblock.MethodSPLATT, Workers: 4})
}

func BenchmarkTuningStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.TuningTable(bench.Quick(), 64, []string{"Poisson2"}); err != nil {
			b.Fatal(err)
		}
	}
}

// Memoization ablation (related-work extension): per-sweep CP-ALS cost
// with and without the shared mode-3 contraction.
func BenchmarkCPALSSweepPlain(b *testing.B) {
	benchCPALSSweeps(b, false)
}

func BenchmarkCPALSSweepMemoized(b *testing.B) {
	benchCPALSSweeps(b, true)
}

func benchCPALSSweeps(b *testing.B, memoize bool) {
	rng := rand.New(rand.NewSource(31))
	dims := spblock.Dims{64, 64, 512}
	x := spblock.NewTensor(dims, 100_000)
	for p := 0; p < 100_000; p++ {
		// Long mode-3 fibers: many nonzeros per (i,j) pair, the regime
		// memoization targets.
		x.Append(int32(rng.Intn(dims[0])), int32(rng.Intn(dims[1])), int32(rng.Intn(dims[2])), 1)
	}
	x.Dedup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spblock.CPALS(x, spblock.CPOptions{
			Rank: 32, MaxIters: 3, Tol: 1e-15, Seed: 1, Memoize: memoize,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
