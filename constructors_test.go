package spblock_test

import (
	"math/rand"
	"testing"

	"spblock"
)

func demoTensorN(rng *rand.Rand, dims []int, nnz int) *spblock.TensorN {
	t := spblock.NewTensorN(dims, nnz)
	coords := make([]int32, len(dims))
	for p := 0; p < nnz; p++ {
		for m, d := range dims {
			coords[m] = int32(rng.Intn(d))
		}
		t.Append(coords, rng.Float64()+0.1)
	}
	if _, err := t.Dedup(); err != nil {
		panic(err)
	}
	return t
}

// TestFacadeConstructorValidation pins the validation parity across all
// four executor constructors: negative Workers and negative
// RankBlockCols are rejected everywhere — including the order-3 fast
// path of NewMultiExecutorN, which used to map a negative strip width
// silently onto the unstripped SPLATT method.
func TestFacadeConstructorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x3 := demoTensor(rng, spblock.Dims{8, 8, 8}, 60)
	n3 := demoTensorN(rng, []int{8, 8, 8}, 60)
	n4 := demoTensorN(rng, []int{6, 5, 4, 3}, 60)

	cases := []struct {
		name    string
		build   func() error
		wantErr bool
	}{
		{"core negative workers", func() error {
			_, err := spblock.NewExecutor(x3, spblock.Plan{Method: spblock.MethodSPLATT, Workers: -1})
			return err
		}, true},
		{"core negative rank block", func() error {
			_, err := spblock.NewExecutor(x3, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: -16})
			return err
		}, true},
		{"core valid", func() error {
			_, err := spblock.NewExecutor(x3, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: 16, Workers: 1})
			return err
		}, false},
		{"multi negative workers", func() error {
			_, err := spblock.NewMultiExecutor(x3, spblock.Plan{Method: spblock.MethodSPLATT, Workers: -1})
			return err
		}, true},
		{"multi negative rank block", func() error {
			_, err := spblock.NewMultiExecutor(x3, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: -16})
			return err
		}, true},
		{"multi valid", func() error {
			_, err := spblock.NewMultiExecutor(x3, spblock.Plan{Method: spblock.MethodMBRankB, Grid: [3]int{2, 2, 2}, RankBlockCols: 16, Workers: 1})
			return err
		}, false},
		{"nmode negative workers", func() error {
			_, err := spblock.NewExecutorN(n4, 0, spblock.OptionsN{Workers: -1})
			return err
		}, true},
		{"nmode negative rank block", func() error {
			_, err := spblock.NewExecutorN(n4, 0, spblock.OptionsN{RankBlockCols: -16})
			return err
		}, true},
		{"nmode bad mode", func() error {
			_, err := spblock.NewExecutorN(n4, 4, spblock.OptionsN{})
			return err
		}, true},
		{"nmode valid", func() error {
			_, err := spblock.NewExecutorN(n4, 0, spblock.OptionsN{RankBlockCols: 16, Workers: 1})
			return err
		}, false},
		{"nengine fast path negative workers", func() error {
			_, err := spblock.NewMultiExecutorN(n3, spblock.OptionsN{Workers: -1})
			return err
		}, true},
		{"nengine fast path negative rank block", func() error {
			_, err := spblock.NewMultiExecutorN(n3, spblock.OptionsN{RankBlockCols: -16})
			return err
		}, true},
		{"nengine fast path valid", func() error {
			_, err := spblock.NewMultiExecutorN(n3, spblock.OptionsN{RankBlockCols: 16, Workers: 1})
			return err
		}, false},
		{"nengine generic negative workers", func() error {
			_, err := spblock.NewMultiExecutorN(n4, spblock.OptionsN{Workers: -1})
			return err
		}, true},
		{"nengine generic negative rank block", func() error {
			_, err := spblock.NewMultiExecutorN(n4, spblock.OptionsN{RankBlockCols: -16})
			return err
		}, true},
		{"nengine generic valid", func() error {
			_, err := spblock.NewMultiExecutorN(n4, spblock.OptionsN{RankBlockCols: 16, Workers: 1})
			return err
		}, false},
	}
	for _, tc := range cases {
		err := tc.build()
		if tc.wantErr && err == nil {
			t.Errorf("%s: constructor accepted invalid input", tc.name)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

// TestFacadeKernelMetrics exercises the instrumentation layer through
// the facade: counters advance across Runs on both the order-3 and the
// generic order-N paths, and the derived report quantities are sane.
func TestFacadeKernelMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dims := spblock.Dims{16, 20, 12}
	x := demoTensor(rng, dims, 300)
	const rank = 32

	exec, err := spblock.NewExecutor(x, spblock.Plan{Method: spblock.MethodRankB, RankBlockCols: 16, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := spblock.NewMatrix(dims[1], rank)
	c := spblock.NewMatrix(dims[2], rank)
	out := spblock.NewMatrix(dims[0], rank)
	const reps = 3
	for i := 0; i < reps; i++ {
		if err := exec.Run(b, c, out); err != nil {
			t.Fatal(err)
		}
	}
	snap := exec.Metrics().Snapshot()
	if snap.Runs != reps {
		t.Fatalf("runs = %d, want %d", snap.Runs, reps)
	}
	// Two strips of 16 at rank 32: every structure walk happens twice.
	if want := int64(reps) * 2 * int64(x.NNZ()); snap.NNZ != want {
		t.Fatalf("nnz = %d, want %d (2 strips x %d reps x %d nonzeros)", snap.NNZ, want, reps, x.NNZ())
	}
	if snap.Strips != reps*2 {
		t.Fatalf("strips = %d, want %d", snap.Strips, reps*2)
	}
	if snap.BytesEst <= 0 || snap.WallNS <= 0 {
		t.Fatalf("degenerate snapshot: %+v", snap)
	}
	if snap.NsPerRun() <= 0 || snap.AchievedGBs() <= 0 {
		t.Fatalf("derived quantities degenerate: ns/run=%d GB/s=%v", snap.NsPerRun(), snap.AchievedGBs())
	}
	if im := snap.Imbalance(); im < 1 {
		t.Fatalf("imbalance %v < 1", im)
	}
	exec.Metrics().Reset()
	if s := exec.Metrics().Snapshot(); s.Runs != 0 || s.NNZ != 0 || s.WallNS != 0 {
		t.Fatalf("reset left state: %+v", s)
	}

	// Order-4 generic path through the N-mode engine.
	n4 := demoTensorN(rng, []int{6, 5, 4, 3}, 150)
	me, err := spblock.NewMultiExecutorN(n4, spblock.OptionsN{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	factors := make([]*spblock.Matrix, 4)
	for m, d := range n4.Dims {
		factors[m] = spblock.NewMatrix(d, 8)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64()
		}
	}
	out4 := spblock.NewMatrix(n4.Dims[0], 8)
	if err := me.Run(0, factors, out4); err != nil {
		t.Fatal(err)
	}
	mc, err := me.Metrics(0)
	if err != nil {
		t.Fatal(err)
	}
	s4 := mc.Snapshot()
	if s4.Runs != 1 || s4.NNZ != int64(n4.NNZ()) {
		t.Fatalf("order-4 snapshot: %+v (nnz want %d)", s4, n4.NNZ())
	}
	if _, err := me.Metrics(7); err == nil {
		t.Fatal("out-of-range mode accepted")
	}

	// Order-3 fast path exposes the same accessor.
	n3 := demoTensorN(rng, []int{8, 8, 8}, 100)
	me3, err := spblock.NewMultiExecutorN(n3, spblock.OptionsN{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f3 := make([]*spblock.Matrix, 3)
	for m, d := range n3.Dims {
		f3[m] = spblock.NewMatrix(d, 8)
	}
	out3 := spblock.NewMatrix(n3.Dims[0], 8)
	if err := me3.Run(0, f3, out3); err != nil {
		t.Fatal(err)
	}
	mc3, err := me3.Metrics(0)
	if err != nil {
		t.Fatal(err)
	}
	if s := mc3.Snapshot(); s.Runs != 1 {
		t.Fatalf("fast-path snapshot runs = %d", s.Runs)
	}
}
