// Autotune: run the paper's Sec. V-C block-size heuristic on two
// tensors with very different shapes and show how the chosen grids
// differ — mode-2-heavy data gets mode-2 blocks, and the rank strip
// width settles where the strip working set fits the cache.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"spblock"
)

func main() {
	// Poisson2-like: a long mode 2 (the paper's Fig. 5a shape).
	p2spec, err := spblock.LookupDataset("Poisson2")
	if err != nil {
		log.Fatal(err)
	}
	poisson2, err := p2spec.GenerateAt(spblock.Dims{120, 1000, 120}, 300_000, 5)
	if err != nil {
		log.Fatal(err)
	}

	// Netflix-like: a long mode 1 with clusters.
	nfspec, err := spblock.LookupDataset("Netflix")
	if err != nil {
		log.Fatal(err)
	}
	netflix, err := nfspec.GenerateAt(spblock.Dims{20_000, 800, 64}, 300_000, 6)
	if err != nil {
		log.Fatal(err)
	}

	const rank = 128
	for _, tc := range []struct {
		name string
		x    *spblock.Tensor
	}{
		{"Poisson2-like", poisson2},
		{"Netflix-like", netflix},
	} {
		fmt.Printf("%s: %s\n", tc.name, spblock.ComputeStats(tc.x))
		for _, method := range []spblock.Method{spblock.MethodMB, spblock.MethodRankB, spblock.MethodMBRankB} {
			plan, trials, err := spblock.Autotune(tc.x, rank, method, spblock.AutotuneOptions{Trials: 2})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s -> %-32s (%d candidates tried)\n", method, plan, len(trials))
			// Show the search trajectory for the combined method.
			if method == spblock.MethodMBRankB {
				for _, tr := range trials {
					fmt.Printf("      tried %-32s %.4fs\n", tr.Plan, tr.Cost)
				}
			}
		}
		fmt.Println()
	}
}
