// Distributed: compare the medium-grained (3D) decomposition against
// the paper's 4D rank-partitioned decomposition on a simulated 16-node
// cluster (32 ranks), reporting modeled time, communication volume and
// the memory-for-communication trade the 4D scheme makes.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"spblock"
)

func main() {
	// A NELL2-shaped tensor from the registry, small enough to run in
	// seconds.
	spec, err := spblock.LookupDataset("NELL2")
	if err != nil {
		log.Fatal(err)
	}
	x, err := spec.GenerateAt(spblock.Dims{600, 450, 1450}, 250_000, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tensor:", spblock.ComputeStats(x))

	const rank = 32
	b := spblock.NewMatrix(x.Dims[1], rank)
	c := spblock.NewMatrix(x.Dims[2], rank)
	for i := range b.Data {
		b.Data[i] = float64(i%97) / 97
	}
	for i := range c.Data {
		c.Data[i] = float64(i%89) / 89
	}

	const ranks = 32 // 16 nodes x 2 ranks, like the paper
	local := spblock.Plan{Method: spblock.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: 16, Workers: 1}

	// Verify against the shared-memory kernel.
	want := spblock.NewMatrix(x.Dims[0], rank)
	if err := spblock.MTTKRP(x, b, c, want, spblock.Plan{Method: spblock.MethodSPLATT}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %-12s %12s %14s %12s\n", "scheme", "grid", "modeled (s)", "comm (bytes)", "max err")
	for _, tc := range []struct {
		name      string
		rankParts int
	}{
		{"3D (medium)", 1},
		{"4D t=2", 2},
		{"4D t=4", 4},
		{"4D t=8", 8},
	} {
		res, err := spblock.DistMTTKRP(x, b, c, spblock.DistConfig{
			Ranks:     ranks,
			RankParts: tc.rankParts,
			Plan:      local,
			Model:     spblock.DefaultCluster(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12s %12.5f %14d %12.2e\n",
			tc.name, res.Grid.String(), res.ModeledSeconds,
			res.Stats.TotalBytes(), res.Out.MaxAbsDiff(want))
	}
	fmt.Println("\nnote: each 4D rank-group replicates the whole tensor (t copies in")
	fmt.Println("memory) in exchange for gathering only R/t factor columns per group —")
	fmt.Println("the memory-communication trade-off of Sec. V-B / VI-D.")

	// Full distributed CP-ALS: every MTTKRP of the decomposition runs
	// on the simulated cluster.
	fmt.Println("\ndistributed CP-ALS (rank 16, 4D t=2):")
	res, err := spblock.DistCPALS(x, spblock.DistConfig{
		Ranks: ranks, RankParts: 2, Plan: local, Model: spblock.DefaultCluster(),
	}, spblock.DistCPOptions{Rank: 16, MaxIters: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, fit := range res.Fits {
		fmt.Printf("  sweep %d: fit = %.5f\n", i+1, fit)
	}
	fmt.Printf("  modeled cluster time in MTTKRP: %.4fs, comm: %.1f MB\n",
		res.ModeledSeconds, float64(res.CommBytes)/1e6)
}
