// Decompose: run a full CP-ALS decomposition of a Netflix-shaped
// synthetic tensor (users x movies x time with community structure) and
// watch the fit improve — the end-to-end application whose inner loop
// is the MTTKRP kernel this library optimises.
//
//	go run ./examples/decompose
package main

import (
	"fmt"
	"log"
	"time"

	"spblock"
)

func main() {
	// Generate a small Netflix-like tensor from the Table II registry.
	spec, err := spblock.LookupDataset("Netflix")
	if err != nil {
		log.Fatal(err)
	}
	x, err := spec.GenerateAt(spblock.Dims{4000, 600, 80}, 150_000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tensor:", spblock.ComputeStats(x))

	const rank = 16

	// Decompose twice: once with the baseline SPLATT kernel, once with
	// the blocked kernel, and compare per-sweep time. The fits match
	// because the kernels compute the same product.
	for _, plan := range []spblock.Plan{
		{Method: spblock.MethodSPLATT},
		{Method: spblock.MethodMBRankB, Grid: [3]int{1, 2, 1}, RankBlockCols: 16},
	} {
		start := time.Now()
		res, err := spblock.CPALS(x, spblock.CPOptions{
			Rank:     rank,
			MaxIters: 20,
			Tol:      1e-6,
			Plan:     plan,
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("\n%s:\n", plan)
		for i, fit := range res.Fits {
			if i%5 == 0 || i == len(res.Fits)-1 {
				fmt.Printf("  sweep %2d: fit = %.5f\n", i+1, fit)
			}
		}
		fmt.Printf("  %d sweeps in %.2fs (%.3fs/sweep), converged=%v\n",
			res.Iters, elapsed, elapsed/float64(res.Iters), res.Converged)
		fmt.Printf("  component weights λ = %.3v\n", res.Lambda[:min(4, len(res.Lambda))])
	}

	// The same data under the Poisson (KL) model — appropriate for
	// count data like this, per the Chi & Kolda line of work the paper
	// draws its synthetic tensors from.
	fmt.Println("\nCP-APR (Poisson / KL multiplicative updates):")
	apr, err := spblock.CPAPR(x, spblock.APROptions{Rank: rank, MaxIters: 15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for i, kl := range apr.KL {
		if i%5 == 0 || i == len(apr.KL)-1 {
			fmt.Printf("  sweep %2d: KL objective = %.1f\n", i+1, kl)
		}
	}
	fmt.Printf("  converged=%v after %d sweeps\n", apr.Converged, apr.Iters)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
