// Quickstart: build a small sparse tensor, run the mode-1 MTTKRP with
// every kernel the library provides, and confirm they all agree.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spblock"
)

func main() {
	// A 200x300x150 tensor with 20k random nonzeros.
	dims := spblock.Dims{200, 300, 150}
	rng := rand.New(rand.NewSource(7))
	x := spblock.NewTensor(dims, 20_000)
	for p := 0; p < 20_000; p++ {
		x.Append(
			int32(rng.Intn(dims[0])),
			int32(rng.Intn(dims[1])),
			int32(rng.Intn(dims[2])),
			rng.Float64(),
		)
	}
	x.Dedup() // merge duplicate coordinates
	fmt.Println("tensor:", spblock.ComputeStats(x))

	// Random rank-32 factor matrices B (J x R) and C (K x R).
	const rank = 32
	b := spblock.NewMatrix(dims[1], rank)
	c := spblock.NewMatrix(dims[2], rank)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}

	// Run A = X(1) · (B ⊙ C) with each kernel.
	plans := []spblock.Plan{
		{Method: spblock.MethodCOO},
		{Method: spblock.MethodSPLATT},
		{Method: spblock.MethodRankB, RankBlockCols: 16},
		{Method: spblock.MethodMB, Grid: [3]int{2, 4, 2}},
		{Method: spblock.MethodMBRankB, Grid: [3]int{2, 4, 2}, RankBlockCols: 16},
	}
	var reference *spblock.Matrix
	for _, plan := range plans {
		out := spblock.NewMatrix(dims[0], rank)
		if err := spblock.MTTKRP(x, b, c, out, plan); err != nil {
			log.Fatalf("%v: %v", plan, err)
		}
		if reference == nil {
			reference = out
			fmt.Printf("%-40s |A|_F = %.6f\n", plan, out.FrobeniusNorm())
			continue
		}
		fmt.Printf("%-40s max diff vs COO = %.2e\n", plan, out.MaxAbsDiff(reference))
	}
	fmt.Println("all kernels agree ✓")
}
