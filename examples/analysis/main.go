// Analysis: walk through the paper's Sec. IV methodology on a small
// tensor — roofline placement (Eq. 1–3), pressure point analysis
// (Table I), per-structure DRAM traffic through a POWER8-like cache,
// and the 3-C miss classification that explains why strip packing
// matters. This is the diagnostic workflow a performance engineer
// would run before choosing block sizes.
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"spblock/internal/cachesim"
	"spblock/internal/gen"
	"spblock/internal/la"
	"spblock/internal/ppa"
	"spblock/internal/roofline"
	"spblock/internal/tensor"
)

func main() {
	// A Poisson3-like cube, small enough to simulate in seconds.
	x, err := gen.Poisson(gen.PoissonParams{
		Dims: tensor.Dims{600, 600, 600}, Events: 400_000, Components: 24, Spread: 0.3,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := tensor.ProfileTensor(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tensor profile:")
	fmt.Println(prof)

	const rank = 128
	csf, err := tensor.BuildCSF(x)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Roofline placement (Sec. IV-A): where does SPLATT MTTKRP sit?
	fmt.Printf("\n1. roofline (rank %d):\n", rank)
	for _, alpha := range []float64{0.0, 0.8, 0.95, 1.0} {
		in, err := roofline.Intensity(roofline.Params{
			NNZ: int64(csf.NNZ()), Fibers: int64(csf.NumFibers()), Rank: rank, Alpha: alpha,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "memory bound"
		if !roofline.POWER8Socket.MemoryBound(in) {
			verdict = "compute bound"
		}
		fmt.Printf("   α=%.2f: I=%.2f flops/byte -> %.1f GFLOP/s attainable (%s on POWER8)\n",
			alpha, in, roofline.POWER8Socket.AttainableGFLOP(in), verdict)
	}

	// 2. Pressure point analysis (Sec. IV-B / Table I) on this host.
	fmt.Println("\n2. pressure points (wall clock on this machine):")
	b := la.NewMatrix(x.Dims[1], rank)
	c := la.NewMatrix(x.Dims[2], rank)
	for i := range b.Data {
		b.Data[i] = float64(i%13) / 13
	}
	for i := range c.Data {
		c.Data[i] = float64(i%7) / 7
	}
	results, err := ppa.Measure(csf, b, c, rank, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("   type %d: %.3fs (%.2fx of baseline) - %s\n",
			int(r.Variant), r.Seconds, r.Relative, r.Variant.Description())
	}

	// 3. Per-structure DRAM traffic through the paper's cache.
	fmt.Println("\n3. simulated DRAM traffic (POWER8-like 64KB L1 + 512KB L2):")
	tr, err := cachesim.MeasureTraffic(cachesim.POWER8(), func(h *cachesim.Hierarchy) error {
		return cachesim.TraceSPLATT(h, csf, cachesim.Options{Rank: rank})
	})
	if err != nil {
		log.Fatal(err)
	}
	total := float64(tr.MemBytes(-1))
	for _, reg := range cachesim.Regions() {
		mb := float64(tr.MemBytes(reg))
		if mb == 0 {
			continue
		}
		fmt.Printf("   %-8s %8.1f MB (%4.1f%%)  hit rate %.3f\n",
			reg, mb/1e6, 100*mb/total, tr.HitRate(reg))
	}
	factorShare := float64(tr.MemBytes(cachesim.RegionB)+tr.MemBytes(cachesim.RegionC)) / total
	fmt.Printf("   total    %8.1f MB — factor matrices carry %.0f%% of the traffic,\n",
		total/1e6, 100*factorShare)
	fmt.Println("   the (1-α)·R·(nnz+F) terms of Eq. 1 (this tensor's short fibers")
	fmt.Println("   make C's per-fiber term unusually heavy; B's per-nonzero term")
	fmt.Println("   dominates on fiber-rich data like Figure 1's)")

	// 4. Miss classification: why the Sec. V-B strip packing matters.
	fmt.Println("\n4. RankB strips at the L2, unpacked vs packed (B factor):")
	for _, noPack := range []bool{true, false} {
		cl, err := cachesim.NewClassifier(cachesim.LevelConfig{Name: "L2", Size: 512 << 10, Ways: 8}, 128)
		if err != nil {
			log.Fatal(err)
		}
		if err := cachesim.TraceRankB(cl, csf, cachesim.Options{
			Rank: rank, RankBlockCols: 32, NoStripPacking: noPack,
		}); err != nil {
			log.Fatal(err)
		}
		m := cl.Region(cachesim.RegionB)
		label := "packed  "
		if noPack {
			label = "unpacked"
		}
		fmt.Printf("   %s: hits=%d compulsory=%d capacity=%d conflict=%d\n",
			label, m.Hits, m.Compulsory, m.Capacity, m.Conflict)
	}
	fmt.Println("\nconclusion: block to keep B resident, pack strips to kill conflicts.")
}
