// Higherorder: the paper notes its methodology "can trivially be
// extended to higher-order data" via the CSF format. This example runs
// the order-N MTTKRP on a 4-way tensor (user x product x word x time,
// an Amazon-reviews-like shape), with rank strips and multi-dimensional
// blocking, cross-checks every variant, and finishes on the unified
// engine: one pooled executor per mode, built once, reused
// allocation-free — the setup a decomposition loop wants.
//
//	go run ./examples/higherorder
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"spblock/internal/engine"
	"spblock/internal/la"
	"spblock/internal/nmode"
)

func main() {
	dims := []int{3000, 800, 1200, 24}
	const nnz = 200_000
	const rank = 32

	rng := rand.New(rand.NewSource(9))
	x := nmode.NewTensor(dims, nnz)
	coords := make([]nmode.Index, len(dims))
	for p := 0; p < nnz; p++ {
		for m, d := range dims {
			coords[m] = nmode.Index(rng.Intn(d))
		}
		x.Append(coords, rng.Float64())
	}
	if _, err := x.Dedup(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("order-%d tensor %v, nnz=%d\n", x.Order(), x.Dims, x.NNZ())

	factors := make([]*la.Matrix, len(dims))
	for m, d := range dims {
		factors[m] = la.NewMatrix(d, rank)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64()
		}
	}

	// Mode-0 MTTKRP through the CSF tree: the output mode is the root,
	// remaining modes ordered short-to-long beneath it.
	order := nmode.DefaultModeOrder(dims, 0)
	fmt.Printf("CSF mode order: %v (root = output mode)\n", order)
	csf, err := nmode.Build(x, order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSF levels: %d/%d/%d/%d nodes, %.1f MB\n",
		csf.NumNodes(0), csf.NumNodes(1), csf.NumNodes(2), csf.NumNodes(3),
		float64(csf.MemoryBytes())/1e6)

	var reference *la.Matrix
	for _, tc := range []struct {
		name string
		run  func(out *la.Matrix) error
	}{
		{"plain tree walk", func(out *la.Matrix) error {
			return nmode.MTTKRP(csf, factors, out, nmode.Options{Workers: 1})
		}},
		{"rank strips (16 cols, packed)", func(out *la.Matrix) error {
			return nmode.MTTKRP(csf, factors, out, nmode.Options{RankBlockCols: 16, Workers: 1})
		}},
		{"MB 2x2x2x2 + rank strips", func(out *la.Matrix) error {
			bt, err := nmode.BuildBlocked(x, []int{2, 2, 2, 2}, order)
			if err != nil {
				return err
			}
			return bt.MTTKRP(factors, out, nmode.Options{RankBlockCols: 16})
		}},
	} {
		out := la.NewMatrix(dims[0], rank)
		start := time.Now()
		if err := tc.run(out); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		if reference == nil {
			reference = out
			fmt.Printf("%-32s %.3fs  |A|_F = %.4f\n", tc.name, elapsed, out.FrobeniusNorm())
			continue
		}
		fmt.Printf("%-32s %.3fs  max diff = %.2e\n", tc.name, elapsed, out.MaxAbsDiff(reference))
	}
	fmt.Println("all order-4 variants agree ✓")

	// The unified engine: every mode's executor built once (what
	// CPALSN does under the hood), then each mode product runs against
	// pooled workspaces. The second pass is the steady state — no
	// allocations, no tree rebuilds.
	eng, err := engine.NewNEngine(x, nmode.Options{RankBlockCols: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunified engine (NewNEngine, rank strips):\n")
	outs := make([]*la.Matrix, len(dims))
	for m, d := range dims {
		outs[m] = la.NewMatrix(d, rank)
	}
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		for m := range dims {
			if err := eng.Run(m, factors, outs[m]); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  pass %d: all %d mode products in %.3fs\n",
			pass+1, len(dims), time.Since(start).Seconds())
	}
	if d := outs[0].MaxAbsDiff(reference); d > 1e-9 {
		log.Fatalf("engine mode-0 product differs by %v", d)
	}
	fmt.Println("engine agrees with the one-shot kernels ✓")
}
