package spblock_test

import (
	"bytes"
	"math/rand"
	"testing"

	"spblock"
)

func demoTensor(rng *rand.Rand, dims spblock.Dims, nnz int) *spblock.Tensor {
	t := spblock.NewTensor(dims, nnz)
	for p := 0; p < nnz; p++ {
		t.Append(
			int32(rng.Intn(dims[0])),
			int32(rng.Intn(dims[1])),
			int32(rng.Intn(dims[2])),
			rng.Float64()+0.1,
		)
	}
	t.Dedup()
	return t
}

func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := spblock.Dims{20, 24, 16}
	x := demoTensor(rng, dims, 400)
	rank := 32

	b := spblock.NewMatrix(dims[1], rank)
	c := spblock.NewMatrix(dims[2], rank)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}

	// Baseline through the facade.
	base := spblock.NewMatrix(dims[0], rank)
	if err := spblock.MTTKRP(x, b, c, base, spblock.Plan{Method: spblock.MethodSPLATT}); err != nil {
		t.Fatal(err)
	}

	// Autotuned blocked executor agrees.
	plan, trials, err := spblock.Autotune(x, rank, spblock.MethodMBRankB, spblock.AutotuneOptions{Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) == 0 {
		t.Fatal("no autotune trials")
	}
	exec, err := spblock.NewExecutor(x, plan)
	if err != nil {
		t.Fatal(err)
	}
	out := spblock.NewMatrix(dims[0], rank)
	if err := exec.Run(b, c, out); err != nil {
		t.Fatal(err)
	}
	if d := out.MaxAbsDiff(base); d > 1e-9 {
		t.Fatalf("tuned kernel differs by %v", d)
	}

	// Distributed agrees too.
	dres, err := spblock.DistMTTKRP(x, b, c, spblock.DistConfig{
		Ranks: 4, RankParts: 2,
		Plan:  spblock.Plan{Method: spblock.MethodSPLATT, Workers: 1},
		Model: spblock.DefaultCluster(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := dres.Out.MaxAbsDiff(base); d > 1e-9 {
		t.Fatalf("distributed differs by %v", d)
	}
}

func TestFacadeTensorIO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := demoTensor(rng, spblock.Dims{5, 5, 5}, 30)
	var buf bytes.Buffer
	if err := spblock.WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	back, err := spblock.ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() || back.Dims != x.Dims {
		t.Fatal("facade round trip changed tensor")
	}
	csf, err := spblock.BuildCSF(x)
	if err != nil {
		t.Fatal(err)
	}
	if csf.NNZ() != x.NNZ() {
		t.Fatal("CSF lost nonzeros")
	}
	if spblock.ComputeStats(x).NNZ != x.NNZ() {
		t.Fatal("stats mismatch")
	}
}

func TestFacadeCPALS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := demoTensor(rng, spblock.Dims{10, 10, 10}, 200)
	res, err := spblock.CPALS(x, spblock.CPOptions{Rank: 4, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() <= 0 || res.Iters == 0 {
		t.Fatalf("decomposition did not progress: fit=%v iters=%d", res.Fit(), res.Iters)
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := spblock.Datasets()
	if len(names) != 7 {
		t.Fatalf("datasets = %v", names)
	}
	spec, err := spblock.LookupDataset("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	small, err := spec.GenerateAt(spblock.Dims{32, 32, 32}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NNZ() == 0 {
		t.Fatal("empty generated dataset")
	}
}

func TestFacadeFileIOAndBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := demoTensor(rng, spblock.Dims{8, 8, 8}, 60)
	path := t.TempDir() + "/x.tns"
	if err := spblock.SaveTNS(path, x); err != nil {
		t.Fatal(err)
	}
	back, err := spblock.LoadTNS(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatal("file round trip lost entries")
	}
	bt, err := spblock.BuildBlocked(x, [3]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if bt.NNZ() != x.NNZ() {
		t.Fatal("blocked tensor lost entries")
	}
}

func TestFacadeDistEngineAndCPALS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := demoTensor(rng, spblock.Dims{10, 10, 10}, 250)
	cfg := spblock.DistConfig{
		Ranks: 2,
		Plan:  spblock.Plan{Method: spblock.MethodSPLATT, Workers: 1},
		Model: spblock.DefaultCluster(),
	}
	eng, err := spblock.NewDistEngine(x, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := spblock.NewMatrix(10, 8)
	c := spblock.NewMatrix(10, 8)
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	for i := range c.Data {
		c.Data[i] = rng.Float64()
	}
	res, err := eng.Run(b, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Out.FrobeniusNorm() == 0 {
		t.Fatal("distributed MTTKRP produced nothing")
	}
	cp, err := spblock.DistCPALS(x, cfg, spblock.DistCPOptions{Rank: 4, MaxIters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Iters == 0 || cp.Fit() <= 0 {
		t.Fatalf("distributed CP-ALS did not progress: %+v", cp)
	}
}

func TestFacadeNMode(t *testing.T) {
	dims := []int{6, 5, 4, 3}
	x := spblock.NewTensorN(dims, 0)
	rng := rand.New(rand.NewSource(6))
	coords := make([]int32, 4)
	for p := 0; p < 200; p++ {
		for m, d := range dims {
			coords[m] = int32(rng.Intn(d))
		}
		x.Append(coords, rng.Float64())
	}
	if _, err := x.Dedup(); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/x4.tns"
	if err := spblock.SaveTNSN(path, x); err != nil {
		t.Fatal(err)
	}
	back, err := spblock.LoadTNSN(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != x.NNZ() {
		t.Fatal("order-4 round trip lost entries")
	}
	csf, err := spblock.BuildCSFN(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	factors := make([]*spblock.Matrix, 4)
	for m, d := range dims {
		factors[m] = spblock.NewMatrix(d, 8)
		for i := range factors[m].Data {
			factors[m].Data[i] = rng.Float64()
		}
	}
	out := spblock.NewMatrix(dims[0], 8)
	if err := spblock.MTTKRPN(csf, factors, out, spblock.OptionsN{RankBlockCols: 16}); err != nil {
		t.Fatal(err)
	}
	if out.FrobeniusNorm() == 0 {
		t.Fatal("order-4 MTTKRP produced nothing")
	}
	res, err := spblock.CPALSN(x, spblock.CPNOptions{Rank: 3, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("order-4 CP-ALS did not run")
	}
}

func TestFacadeCPAPR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := spblock.NewTensor(spblock.Dims{12, 12, 12}, 300)
	for p := 0; p < 300; p++ {
		x.Append(int32(rng.Intn(12)), int32(rng.Intn(12)), int32(rng.Intn(12)),
			float64(rng.Intn(5)+1))
	}
	x.Dedup()
	res, err := spblock.CPAPR(x, spblock.APROptions{Rank: 3, MaxIters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KL) < 2 || !(res.FinalKL() < res.KL[0]) {
		t.Fatalf("KL trajectory broken: %v", res.KL)
	}
}

func TestFacadeMultiExecutor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dims := spblock.Dims{15, 12, 10}
	x := demoTensor(rng, dims, 350)
	const rank = 16

	factors := [3]*spblock.Matrix{}
	for n := 0; n < 3; n++ {
		m := spblock.NewMatrix(dims[n], rank)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		factors[n] = m
	}

	me, err := spblock.NewMultiExecutor(x, spblock.Plan{
		Method: spblock.MethodMBRankB, Grid: [3]int{3, 2, 2}, RankBlockCols: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every mode product must agree with a one-shot COO MTTKRP on an
	// explicitly permuted tensor.
	perms := [3][3]int{{0, 1, 2}, {1, 0, 2}, {2, 0, 1}}
	operands := [3][2]int{{1, 2}, {0, 2}, {0, 1}}
	for n := 0; n < 3; n++ {
		pt, err := x.PermuteModes(perms[n])
		if err != nil {
			t.Fatal(err)
		}
		want := spblock.NewMatrix(dims[n], rank)
		if err := spblock.MTTKRP(pt, factors[operands[n][0]], factors[operands[n][1]], want,
			spblock.Plan{Method: spblock.MethodCOO}); err != nil {
			t.Fatal(err)
		}
		got := spblock.NewMatrix(dims[n], rank)
		for rep := 0; rep < 2; rep++ { // second run reuses the workspace
			if err := me.Run(n, factors, got); err != nil {
				t.Fatal(err)
			}
		}
		if d := got.MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("mode %d differs from COO reference by %v", n, d)
		}
	}
	if _, err := me.Executor(0); err != nil {
		t.Fatal(err)
	}
}
